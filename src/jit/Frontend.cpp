//===- jit/Frontend.cpp - ir::Function loop region -> JIT IR --------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/Frontend.h"

#include "ir/BasicBlock.h"
#include "ir/Instruction.h"
#include "ir/Value.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

using namespace spice;
using namespace spice::jit;
using namespace spice::transform;
using namespace spice::analysis;
using namespace spice::ir;

namespace {

/// Maps an ir ALU/compare opcode onto its JIT twin. Returns false for
/// non-ALU opcodes.
bool mapAluOp(Opcode Op, JitOp &Out) {
  switch (Op) {
  case Opcode::Add:
    Out = JitOp::Add;
    return true;
  case Opcode::Sub:
    Out = JitOp::Sub;
    return true;
  case Opcode::Mul:
    Out = JitOp::Mul;
    return true;
  case Opcode::SDiv:
    Out = JitOp::SDiv;
    return true;
  case Opcode::SRem:
    Out = JitOp::SRem;
    return true;
  case Opcode::And:
    Out = JitOp::And;
    return true;
  case Opcode::Or:
    Out = JitOp::Or;
    return true;
  case Opcode::Xor:
    Out = JitOp::Xor;
    return true;
  case Opcode::Shl:
    Out = JitOp::Shl;
    return true;
  case Opcode::LShr:
    Out = JitOp::LShr;
    return true;
  case Opcode::AShr:
    Out = JitOp::AShr;
    return true;
  case Opcode::SMin:
    Out = JitOp::SMin;
    return true;
  case Opcode::SMax:
    Out = JitOp::SMax;
    return true;
  case Opcode::ICmpEq:
    Out = JitOp::CmpEq;
    return true;
  case Opcode::ICmpNe:
    Out = JitOp::CmpNe;
    return true;
  case Opcode::ICmpSLt:
    Out = JitOp::CmpSLt;
    return true;
  case Opcode::ICmpSLe:
    Out = JitOp::CmpSLe;
    return true;
  case Opcode::ICmpSGt:
    Out = JitOp::CmpSGt;
    return true;
  case Opcode::ICmpSGe:
    Out = JitOp::CmpSGe;
    return true;
  case Opcode::ICmpULt:
    Out = JitOp::CmpULt;
    return true;
  default:
    return false;
  }
}

class Lifter {
public:
  Lifter(const CanonicalLoop &CL, JitFunction &F) : CL(CL), F(F) {}

  bool run(std::string &Error);

private:
  bool refuseUnsupported();
  void allocateLoopRegs();
  bool lowerBlock(const BasicBlock *BB);
  bool lowerInst(const Instruction *I);
  bool lowerEdge(const BasicBlock *From, const BasicBlock *To);
  bool regFor(const Value *V, int32_t &Reg);
  void buildMetadata(std::string &Error);

  void emit(JitInst I) { F.Insts.push_back(I); }

  const CanonicalLoop &CL;
  JitFunction &F;
  std::unordered_map<const Value *, uint32_t> ValueRegs;
  std::unordered_map<const BasicBlock *, uint32_t> BlockOffsets;
  /// Jmp/JmpIf instructions whose Target is a block laid out later.
  std::vector<std::pair<size_t, const BasicBlock *>> Fixups;
  std::vector<uint32_t> Scratch; ///< Phi-trampoline scratch bank.
  std::string Err;
};

bool Lifter::refuseUnsupported() {
  for (const BasicBlock *BB : CL.L->blocks())
    for (size_t I = 0; I != BB->size(); ++I) {
      switch (BB->get(I)->getOpcode()) {
      case Opcode::Send:
      case Opcode::Recv:
      case Opcode::SpecBegin:
      case Opcode::SpecCommit:
      case Opcode::SpecRollback:
      case Opcode::Resteer:
      case Opcode::Halt:
      case Opcode::Ret:
        Err = "loop contains simulator-only opcode " +
              std::string(getOpcodeName(BB->get(I)->getOpcode()));
        return false;
      default:
        break;
      }
    }
  return true;
}

void Lifter::allocateLoopRegs() {
  size_t MaxPhis = 0;
  for (const BasicBlock *BB : CL.L->blocks()) {
    size_t NumPhis = 0;
    for (size_t I = 0; I != BB->size(); ++I) {
      const Instruction *In = BB->get(I);
      if (In->getOpcode() == Opcode::Phi)
        ++NumPhis;
      if (In->producesValue())
        ValueRegs[In] = F.newReg();
    }
    MaxPhis = NumPhis > MaxPhis ? NumPhis : MaxPhis;
  }
  for (size_t I = 0; I != MaxPhis; ++I)
    Scratch.push_back(F.newReg());
}

bool Lifter::regFor(const Value *V, int32_t &Reg) {
  auto It = ValueRegs.find(V);
  if (It != ValueRegs.end()) {
    Reg = static_cast<int32_t>(It->second);
    return true;
  }
  if (const auto *C = dyn_cast<ConstantInt>(V)) {
    uint32_t R = F.newReg();
    F.ConstPool.push_back({R, C->getValue()});
    ValueRegs[V] = R;
    Reg = static_cast<int32_t>(R);
    return true;
  }
  if (isa<Argument>(V) || isa<GlobalVariable>(V)) {
    uint32_t R = F.newReg();
    F.Bindings.push_back({R, V});
    ValueRegs[V] = R;
    Reg = static_cast<int32_t>(R);
    return true;
  }
  const auto *I = dyn_cast<Instruction>(V);
  if (I && !CL.L->contains(I)) {
    // Defined by the entry slice: invariant during the invocation.
    uint32_t R = F.newReg();
    F.Bindings.push_back({R, V});
    ValueRegs[V] = R;
    Reg = static_cast<int32_t>(R);
    return true;
  }
  Err = "unmapped in-loop value (non-value-producing operand?)";
  return false;
}

bool Lifter::lowerEdge(const BasicBlock *From, const BasicBlock *To) {
  if (!CL.L->contains(To)) {
    assert(To == CL.Exit && "canonical loop has a single exit");
    emit({JitOp::LoopExit});
    return true;
  }
  // The edge's phi assignments are simultaneous: collect the full
  // parallel-copy set before emitting anything.
  struct PhiCopy {
    int32_t Dst, Src;
  };
  std::vector<PhiCopy> Copies;
  bool Ok = true;
  To->forEachPhi([&](Instruction *Phi) {
    if (!Ok)
      return;
    const Value *In = Phi->getPhiIncomingFor(From);
    if (!In) {
      Err = "phi has no incoming for a lowered edge";
      Ok = false;
      return;
    }
    int32_t SrcReg;
    if (!regFor(In, SrcReg)) {
      Ok = false;
      return;
    }
    if (SrcReg != static_cast<int32_t>(ValueRegs.at(Phi)))
      Copies.push_back({static_cast<int32_t>(ValueRegs.at(Phi)), SrcReg});
  });
  if (!Ok)
    return false;
  bool Conflict = false;
  for (const PhiCopy &A : Copies)
    for (const PhiCopy &B : Copies)
      Conflict |= A.Src == B.Dst;
  if (!Conflict) {
    // No source is also a destination, so the simultaneous assignment
    // degenerates to plain ordered copies (the common case: next-values
    // come from body instructions, not from other phis).
    for (const PhiCopy &C : Copies) {
      JitInst Mv;
      Mv.Op = JitOp::Copy;
      Mv.Dst = C.Dst;
      Mv.A = C.Src;
      emit(Mv);
    }
  } else {
    // Trampoline: gather every incoming into scratch, then commit, the
    // same way the interpreter's executeBranchTo handles phi swaps.
    assert(Copies.size() <= Scratch.size() && "scratch bank too small");
    for (size_t I = 0; I != Copies.size(); ++I) {
      JitInst Gather;
      Gather.Op = JitOp::Copy;
      Gather.Dst = static_cast<int32_t>(Scratch[I]);
      Gather.A = Copies[I].Src;
      emit(Gather);
    }
    for (size_t I = 0; I != Copies.size(); ++I) {
      JitInst Commit;
      Commit.Op = JitOp::Copy;
      Commit.Dst = Copies[I].Dst;
      Commit.A = static_cast<int32_t>(Scratch[I]);
      emit(Commit);
    }
  }
  if (To == CL.Header) {
    emit({JitOp::IterEnd});
    return true;
  }
  JitInst J;
  J.Op = JitOp::Jmp;
  auto It = BlockOffsets.find(To);
  if (It != BlockOffsets.end()) {
    J.Target = It->second;
  } else {
    Fixups.push_back({F.Insts.size(), To});
  }
  emit(J);
  return true;
}

bool Lifter::lowerInst(const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Phi:
    return true; // Handled by edge trampolines.
  case Opcode::ProfNewInvoc:
  case Opcode::ProfRecord:
  case Opcode::ProfIterEnd:
    return true; // The JIT tier runs after profiling.
  case Opcode::Load: {
    int32_t Addr;
    if (!regFor(I->getOperand(0), Addr))
      return false;
    JitInst G;
    G.Op = JitOp::GuardLoad;
    G.A = Addr;
    emit(G);
    JitInst L;
    L.Op = JitOp::Load;
    L.Dst = static_cast<int32_t>(ValueRegs.at(I));
    L.A = Addr;
    emit(L);
    return true;
  }
  case Opcode::Store: {
    int32_t Addr, V;
    if (!regFor(I->getOperand(0), Addr) || !regFor(I->getOperand(1), V))
      return false;
    JitInst G;
    G.Op = JitOp::GuardStore;
    G.A = Addr;
    emit(G);
    JitInst S;
    S.Op = JitOp::Store;
    S.A = Addr;
    S.B = V;
    emit(S);
    return true;
  }
  case Opcode::Select: {
    int32_t Cond, T, E;
    if (!regFor(I->getOperand(0), Cond) || !regFor(I->getOperand(1), T) ||
        !regFor(I->getOperand(2), E))
      return false;
    JitInst S;
    S.Op = JitOp::Select;
    S.Dst = static_cast<int32_t>(ValueRegs.at(I));
    S.A = Cond;
    S.B = T;
    S.C = E;
    emit(S);
    return true;
  }
  case Opcode::Br:
    return lowerEdge(I->getParent(), I->getBlockOperand(0));
  case Opcode::CondBr: {
    int32_t Cond;
    if (!regFor(I->getOperand(0), Cond))
      return false;
    JitInst J;
    J.Op = JitOp::JmpIf;
    J.A = Cond;
    size_t JmpAt = F.Insts.size();
    emit(J); // Target patched to the true edge below.
    if (!lowerEdge(I->getParent(), I->getBlockOperand(1))) // False edge.
      return false;
    F.Insts[JmpAt].Target = static_cast<uint32_t>(F.Insts.size());
    return lowerEdge(I->getParent(), I->getBlockOperand(0)); // True edge.
  }
  default: {
    JitOp Op;
    if (!mapAluOp(I->getOpcode(), Op)) {
      Err = "unsupported opcode " +
            std::string(getOpcodeName(I->getOpcode()));
      return false;
    }
    int32_t A, B;
    if (!regFor(I->getOperand(0), A) || !regFor(I->getOperand(1), B))
      return false;
    if (Op == JitOp::SDiv || Op == JitOp::SRem) {
      JitInst G;
      G.Op = JitOp::GuardDiv;
      G.A = A;
      G.B = B;
      emit(G);
    }
    JitInst In;
    In.Op = Op;
    In.Dst = static_cast<int32_t>(ValueRegs.at(I));
    In.A = A;
    In.B = B;
    emit(In);
    return true;
  }
  }
}

bool Lifter::lowerBlock(const BasicBlock *BB) {
  BlockOffsets[BB] = static_cast<uint32_t>(F.Insts.size());
  for (size_t I = 0; I != BB->size(); ++I)
    if (!lowerInst(BB->get(I)))
      return false;
  return true;
}

void Lifter::buildMetadata(std::string &Error) {
  // Header phis in block order: reductions (primaries first, then
  // payloads pointing at their primary's index) and speculated live-ins.
  std::unordered_map<const Instruction *, int32_t> PrimaryIndex;
  const LoopCarriedInfo &Info = CL.Info;
  for (size_t I = 0; I != Info.HeaderPhis.size(); ++I) {
    const Instruction *Phi = Info.HeaderPhis[I];
    const ReductionInfo *R = Info.getReductionFor(Phi);
    if (!R) {
      F.SpecPhiRegs.push_back(ValueRegs.at(Phi));
      F.SpecPhis.push_back(Phi);
      F.SpecPhiStarts.push_back(Info.StartValues[I]);
      continue;
    }
    bool IsPayload = R->Kind == ReductionKind::MinPayload ||
                     R->Kind == ReductionKind::MaxPayload;
    if (IsPayload)
      continue; // Second pass, after every primary has an index.
    JitReduction JR;
    JR.Kind = R->Kind;
    JR.Reg = ValueRegs.at(Phi);
    JR.Identity = getReductionIdentity(R->Kind);
    JR.Phi = Phi;
    JR.StartValue = R->StartValue;
    PrimaryIndex[Phi] = static_cast<int32_t>(F.Reductions.size());
    F.Reductions.push_back(JR);
  }
  for (size_t I = 0; I != Info.HeaderPhis.size(); ++I) {
    const Instruction *Phi = Info.HeaderPhis[I];
    const ReductionInfo *R = Info.getReductionFor(Phi);
    if (!R || (R->Kind != ReductionKind::MinPayload &&
               R->Kind != ReductionKind::MaxPayload))
      continue;
    auto It = PrimaryIndex.find(R->PrimaryPhi);
    if (It == PrimaryIndex.end()) {
      Error = "payload reduction's primary is not a lowered reduction";
      return;
    }
    JitReduction JR;
    JR.Kind = R->Kind;
    JR.Reg = ValueRegs.at(Phi);
    JR.PrimaryIndex = It->second;
    JR.Identity = getReductionIdentity(R->Kind);
    JR.Phi = Phi;
    JR.StartValue = R->StartValue;
    F.Reductions.push_back(JR);
  }
}

bool Lifter::run(std::string &Error) {
  if (!refuseUnsupported()) {
    Error = Err;
    return false;
  }
  allocateLoopRegs();

  // Header first (the unit's entry is pc 0), then the remaining loop
  // blocks in reverse post-order so forward Jmps are the common case.
  if (!lowerBlock(CL.Header)) {
    Error = Err;
    return false;
  }
  for (const BasicBlock *BB : CL.CFG->reversePostOrder()) {
    if (BB == CL.Header || !CL.L->contains(BB))
      continue;
    if (!lowerBlock(BB)) {
      Error = Err;
      return false;
    }
  }
  for (const auto &[InstIdx, BB] : Fixups) {
    auto It = BlockOffsets.find(BB);
    assert(It != BlockOffsets.end() && "jump to an un-lowered block");
    F.Insts[InstIdx].Target = It->second;
  }
  buildMetadata(Error);
  return Error.empty();
}

} // namespace

FrontendResult jit::liftLoop(const CanonicalLoop &CL) {
  FrontendResult Res;
  auto Fn = std::make_unique<JitFunction>();
  Fn->Name = CL.F->getName() + ".loop";
  Fn->Source = CL.F;
  Fn->Header = CL.Header;
  Fn->Exit = CL.Exit;
  Lifter L(CL, *Fn);
  if (!L.run(Res.Error))
    return Res;
  std::vector<std::string> Errors = verifyJitFunction(*Fn);
  if (!Errors.empty()) {
    Res.Error = "lifted function fails verification: " + Errors.front();
    return Res;
  }
  Res.Fn = std::move(Fn);
  return Res;
}
