//===- jit/Frontend.h - ir::Function loop region -> JIT IR ------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT frontend lifts the loop region of a canonical Spice loop
/// (transform::CanonicalLoop) into a JitFunction:
///
///   * every value-producing in-loop instruction (including phis) gets a
///     frame register; constants become const-pool registers; values
///     defined outside the loop (arguments, globals, entry-slice
///     instructions) become per-invocation binding registers;
///   * control flow is linearized with explicit Jmp/JmpIf; every CFG edge
///     gets a *phi trampoline* (parallel copy through scratch registers,
///     gather-then-commit, so swap permutations stay correct);
///   * the back edge to the outer header lowers to its trampoline plus
///     `IterEnd`; the loop's single exit edge lowers to `LoopExit`;
///   * loads, stores and divisions get explicit guards replicating the
///     interpreter's asserts, turned into deopts (JitIR.h).
///
/// Profiling intrinsics (ProfNewInvoc/ProfRecord/ProfIterEnd) are
/// dropped -- the JIT tier runs after profiling. Channel, speculation and
/// resteer intrinsics (Send/Recv/Spec*/Resteer/Halt) are simulator-only;
/// a loop containing them is refused and stays on the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_JIT_FRONTEND_H
#define SPICE_JIT_FRONTEND_H

#include "jit/JitIR.h"
#include "transform/CanonicalLoop.h"

#include <memory>
#include <string>

namespace spice {
namespace jit {

/// Outcome of a lift: either a JitFunction or a reason for refusal.
struct FrontendResult {
  std::unique_ptr<JitFunction> Fn;
  std::string Error;
};

/// Lifts the loop region of \p CL. On success the returned function
/// verifies cleanly (verifyJitFunction) and enters at pc 0 with the
/// header-phi registers holding the current iteration's live-ins.
FrontendResult liftLoop(const transform::CanonicalLoop &CL);

} // namespace jit
} // namespace spice

#endif // SPICE_JIT_FRONTEND_H
