//===- jit/CodeCache.cpp - Compiled-unit cache with LRU eviction ----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeCache.h"

#include "jit/Frontend.h"
#include "jit/Passes.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

using namespace spice;
using namespace spice::jit;
using namespace spice::core;

uint64_t jit::hashLoopOptions(const LoopOptions &Opts) {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a offset basis.
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I != 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  Mix(Opts.ChunksPerThread);
  Mix(static_cast<uint64_t>(Opts.Chunking.Mode));
  Mix(Opts.Chunking.MinK);
  Mix(Opts.Chunking.MaxK);
  Mix(Opts.Chunking.EpochInvocations);
  Mix(Opts.RememoizeEveryInvocation);
  Mix(Opts.UseWeightedWork);
  Mix(Opts.EnableConflictDetection);
  Mix(Opts.MaxSpecIterations);
  Mix(Opts.MaxRecoveryRequeues);
  Mix(Opts.BootstrapCapacity);
  Mix(static_cast<uint64_t>(static_cast<int64_t>(Opts.Priority)));
  Mix(Opts.MaxQueuedSubmissions);
  Mix(Opts.SubmitDeadlineMicros);
  return H;
}

std::shared_ptr<const CompiledUnit>
jit::compileLoop(const transform::CanonicalLoop &CL, bool RunPasses,
                 std::string *WhyNot) {
  FrontendResult Lifted = liftLoop(CL);
  if (!Lifted.Fn) {
    if (WhyNot)
      *WhyNot = Lifted.Error;
    return nullptr;
  }
  if (RunPasses)
    runDefaultPasses(*Lifted.Fn);
  return lowerToClosures(std::move(Lifted.Fn));
}

std::shared_ptr<const CompiledUnit>
CodeCache::lookup(const ir::Function *F, const ir::BasicBlock *Header,
                  uint64_t OptsHash) {
  auto It = Entries.find(Key{F, Header, OptsHash});
  if (It == Entries.end()) {
    ++Stats.Misses;
    return nullptr;
  }
  It->second.Tick = NextTick++;
  ++Stats.Hits;
  return It->second.Unit;
}

void CodeCache::insert(const ir::Function *F, const ir::BasicBlock *Header,
                       uint64_t OptsHash,
                       std::shared_ptr<const CompiledUnit> Unit) {
  Key K{F, Header, OptsHash};
  auto It = Entries.find(K);
  if (It != Entries.end()) {
    It->second = Entry{std::move(Unit), NextTick++};
    return;
  }
  if (Entries.size() >= Capacity) {
    auto Victim = Entries.begin();
    for (auto EIt = Entries.begin(); EIt != Entries.end(); ++EIt)
      if (EIt->second.Tick < Victim->second.Tick)
        Victim = EIt;
    Entries.erase(Victim);
    ++Stats.Evictions;
  }
  Entries.emplace(K, Entry{std::move(Unit), NextTick++});
}

std::shared_ptr<const CompiledUnit>
CodeCache::getOrCompile(const transform::CanonicalLoop &CL,
                        const LoopOptions &Opts, bool RunPasses,
                        std::string *WhyNot) {
  uint64_t H = hashLoopOptions(Opts);
  if (std::shared_ptr<const CompiledUnit> Unit =
          lookup(CL.F, CL.Header, H))
    return Unit;
  std::shared_ptr<const CompiledUnit> Unit =
      compileLoop(CL, RunPasses, WhyNot);
  if (Unit)
    insert(CL.F, CL.Header, H, Unit);
  return Unit;
}

void CodeCache::invalidate(const ir::Function *F) {
  for (auto It = Entries.begin(); It != Entries.end();) {
    if (std::get<0>(It->first) == F) {
      It = Entries.erase(It);
      ++Stats.Invalidations;
    } else {
      ++It;
    }
  }
}
