//===- jit/Passes.h - JIT IR cleanup passes ---------------------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Five small flow-insensitive passes over JitFunction, plus the Nop
/// compactor that strips their tombstones:
///
///   * constantFold  -- evaluates ops whose operands are const-pool
///     registers (single-def destinations only), folds const-condition
///     JmpIf to Jmp/Nop and provably-passing GuardDiv to Nop;
///   * eliminateDeadCode -- removes value-producing ops whose results
///     can never reach a root (spec-phi / reduction registers) or a
///     side-effecting op;
///   * dedupGuards  -- drops a guard that repeats an identical guard
///     earlier in the same straight-line run with no redefinition of its
///     operands in between (the frontend emits one guard per memory op,
///     so address-recomputing loops produce many duplicates);
///   * simplifyJumps -- drops Jmp/JmpIf whose target is the next
///     instruction (the frontend's two-edge CondBr lowering leaves one
///     per conditional when an edge falls through);
///   * coalesceCopies -- rewrites `def S; ...; copy D <- S` into a
///     direct def of D when S is single-def/single-use and the region
///     between is one straight-line run that never touches D, removing
///     the per-iteration phi-commit copies the trampolines emit.
///
/// Passes replace instructions with Nop; compactNops() renumbers and
/// drops them. runDefaultPasses() iterates the trio to a fixpoint and
/// compacts; the result re-verifies (asserted in debug builds).
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_JIT_PASSES_H
#define SPICE_JIT_PASSES_H

#include "jit/JitIR.h"

namespace spice {
namespace jit {

/// Each pass returns true when it changed the function.
bool constantFold(JitFunction &F);
bool eliminateDeadCode(JitFunction &F);
bool dedupGuards(JitFunction &F);
bool simplifyJumps(JitFunction &F);
bool coalesceCopies(JitFunction &F);

/// Removes Nop instructions, remapping jump targets. Safe because every
/// jump target leads (possibly through Nops) to a surviving flow op.
void compactNops(JitFunction &F);

/// Fold + dedup + DCE to a fixpoint, compact, then the layout-sensitive
/// cleanups (simplifyJumps, coalesceCopies) to their own fixpoint.
void runDefaultPasses(JitFunction &F);

} // namespace jit
} // namespace spice

#endif // SPICE_JIT_PASSES_H
