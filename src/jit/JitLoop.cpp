//===- jit/JitLoop.cpp - Tiered runner implementation ---------------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "jit/JitLoop.h"

#include "vm/Interpreter.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

using namespace spice;
using namespace spice::jit;

//===----------------------------------------------------------------------===//
// JitLoopTraits
//===----------------------------------------------------------------------===//

void JitLoopTraits::combine(State &Into, State &&Chunk) const {
  Into.Poisoned |= Chunk.Poisoned;
  const JitFunction &Fn = Unit->Fn;
  // Mirrors SpiceTransform::emitMerge: Into is the earlier chunk, so
  // Min/Max ties keep the earlier value and payload phis follow their
  // primary's take decision.
  std::vector<char> Take(Fn.Reductions.size(), 0);
  for (size_t I = 0; I != Fn.Reductions.size(); ++I) {
    const JitReduction &R = Fn.Reductions[I];
    int64_t &Cur = Into.Frame[R.Reg];
    const int64_t New = Chunk.Frame[R.Reg];
    switch (R.Kind) {
    case analysis::ReductionKind::Sum:
      Cur = evalBinary(JitOp::Add, Cur, New);
      break;
    case analysis::ReductionKind::Product:
      Cur = evalBinary(JitOp::Mul, Cur, New);
      break;
    case analysis::ReductionKind::BitAnd:
      Cur &= New;
      break;
    case analysis::ReductionKind::BitOr:
      Cur |= New;
      break;
    case analysis::ReductionKind::BitXor:
      Cur ^= New;
      break;
    case analysis::ReductionKind::Min:
      Take[I] = New < Cur;
      if (Take[I])
        Cur = New;
      break;
    case analysis::ReductionKind::Max:
      Take[I] = New > Cur;
      if (Take[I])
        Cur = New;
      break;
    case analysis::ReductionKind::MinPayload:
    case analysis::ReductionKind::MaxPayload:
      assert(R.PrimaryIndex >= 0 &&
             static_cast<size_t>(R.PrimaryIndex) < I &&
             "payload reduction must follow its primary");
      if (Take[R.PrimaryIndex])
        Cur = New;
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// JitLoopRunner
//===----------------------------------------------------------------------===//

JitLoopRunner::JitLoopRunner(core::SpiceRuntime &RT, ir::Function &F,
                             vm::Memory &Mem, CodeCache &Cache,
                             core::LoopOptions Opts, JitTierOptions Tier)
    : RT(RT), F(F), Mem(Mem), Cache(Cache), Opts(Opts), Tier(Tier) {
  std::string Why;
  CL = transform::matchCanonicalLoop(F, &Why);
  if (!CL) {
    Refused = true;
    WhyNot = Why;
  } else if (CL->Info.SpeculatedLiveIns.size() > kMaxSpeculatedLiveIns) {
    Refused = true;
    WhyNot = "@" + F.getName() +
             ": more speculated live-ins than a JitLiveIn slot can carry";
  }
}

bool JitLoopRunner::ensureJitted() {
  if (Unit)
    return true;
  if (Refused || !CL)
    return false;
  if (!Tier.ForceJit) {
    if (InterpretedInvocations < Tier.WarmupInvocations)
      return false;
    if (Profile.fractionIn(CL->L->blocks()) < Tier.HotnessThreshold)
      return false;
  }
  std::string Why;
  Unit = Cache.getOrCompile(*CL, Opts, Tier.RunPasses, &Why);
  if (!Unit) {
    Refused = true;
    WhyNot = Why;
    return false;
  }
  assert(Unit->Fn.SpecPhiRegs.size() <= kMaxSpeculatedLiveIns &&
         "matcher admitted more live-ins than the runner refused");
  Traits.Unit = Unit.get();
  Traits.MemBase = Mem.data();
  Traits.MemWords = Mem.size();
  Traits.StepFuel = Tier.StepFuel;
  Traits.TemplateFrame.assign(Unit->Fn.NumRegs, 0);
  Traits.Deopts = &Deopts;
  Loop.emplace(Traits, RT, Opts);
  return true;
}

std::unique_ptr<JitLoopRunner::EntrySlice>
JitLoopRunner::beginInvocation(const std::vector<int64_t> &Args,
                               JitLiveIn &StartLI) {
  auto S = std::make_unique<EntrySlice>(F, Mem, Args);
  // Entry slice: interpret the preheader (== entry block); its branch
  // into the header commits the phis, so the context then holds every
  // loop-carried start value.
  while (S->TC.currentBlock() != CL->Header) {
    vm::StepResult R = S->TC.step();
    assert(R.Status == vm::StepStatus::Ran &&
           "entry slice finished without reaching the loop header");
    (void)R;
  }
  const JitFunction &Fn = Unit->Fn;
  std::vector<int64_t> &T = Traits.TemplateFrame;
  std::fill(T.begin(), T.end(), 0);
  for (const JitImm &C : Fn.ConstPool)
    T[C.Reg] = C.Value;
  for (const JitBinding &B : Fn.Bindings)
    T[B.Reg] = S->TC.evaluate(B.Src);
  for (const JitReduction &R : Fn.Reductions)
    T[R.Reg] = R.Identity;
  StartLI = JitLiveIn{};
  for (size_t I = 0; I != Fn.SpecPhis.size(); ++I)
    StartLI.V[I] = S->TC.evaluate(Fn.SpecPhis[I]);
  return S;
}

int64_t JitLoopRunner::finishInvocation(EntrySlice &S,
                                        JitLoopTraits::State Merged) {
  const JitFunction &Fn = Unit->Fn;
  // The chunks all started their reductions at identities; fold the true
  // start values in exactly once, with the start state as the earlier
  // side so Min/Max ties resolve to the pre-loop value.
  JitLoopTraits::State Start = Traits.initialState();
  for (const JitReduction &R : Fn.Reductions)
    Start.Frame[R.Reg] = S.TC.evaluate(R.Phi);
  Traits.combine(Start, std::move(Merged));
  // Exit slice: deposit the final reduction values into the phis'
  // registers and let the interpreter finish from the loop exit.
  for (const JitReduction &R : Fn.Reductions)
    S.TC.setValue(R.Phi, Start.Frame[R.Reg]);
  S.TC.jumpTo(CL->Exit);
  vm::StepStatus St = S.TC.run();
  assert(St == vm::StepStatus::Returned && "exit slice did not return");
  (void)St;
  ++JitInvocations;
  return S.TC.getReturnValue();
}

int64_t JitLoopRunner::invoke(const std::vector<int64_t> &Args) {
  if (!ensureJitted())
    return runInterpreted(Args);
  JitLiveIn LI;
  std::unique_ptr<EntrySlice> S = beginInvocation(Args, LI);
  return finishInvocation(*S, Loop->invoke(LI));
}

int64_t JitLoopRunner::Pending::get() {
  if (HasImmediate) {
    HasImmediate = false;
    return Immediate;
  }
  assert(Runner && Slice && Fut && "resolving an empty or consumed Pending");
  JitLoopTraits::State Merged = Fut->get();
  Fut.reset();
  int64_t Ret = Runner->finishInvocation(*Slice, std::move(Merged));
  Slice.reset();
  return Ret;
}

JitLoopRunner::Pending JitLoopRunner::submit(const std::vector<int64_t> &Args) {
  Pending P;
  P.Runner = this;
  if (!ensureJitted()) {
    P.HasImmediate = true;
    P.Immediate = runInterpreted(Args);
    return P;
  }
  P.Slice = beginInvocation(Args, P.Start);
  P.Fut.emplace(Loop->submit(P.Start));
  return P;
}

int64_t JitLoopRunner::invokeSequential(const std::vector<int64_t> &Args) {
  if (!ensureJitted())
    return runInterpreted(Args);
  JitLiveIn LI;
  std::unique_ptr<EntrySlice> S = beginInvocation(Args, LI);
  return finishInvocation(*S, Loop->runSequentialReference(LI));
}

int64_t JitLoopRunner::runInterpreted(const std::vector<int64_t> &Args) {
  vm::ExecutionResult R = vm::runFunction(F, Mem, Args);
  Profile.accumulate(R.BlockCounts);
  ++InterpretedInvocations;
  return R.ReturnValue;
}
