//===- jit/CodeCache.h - Compiled-unit cache with LRU eviction --*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code cache closes the serving-layer loop: the same IR loops are
/// re-submitted millions of times, so compilation must be paid once.
/// Units are keyed by (source function, loop header, LoopOptions hash) --
/// the options hash keeps units compiled under different loop policies
/// distinct, so a policy change (say, flipping EnableConflictDetection)
/// cleanly misses instead of resurrecting a unit compiled under other
/// assumptions. Eviction is LRU at a fixed capacity; invalidate(F) drops
/// every unit lifted from F (the hook for callers that mutate IR between
/// runs). Units are handed out as shared_ptr<const CompiledUnit>, so an
/// evicted unit stays valid for loops still running it.
///
/// compileLoop() is the full pipeline (frontend -> passes -> backend);
/// CodeCache::getOrCompile() wraps it with the cache, and its Stats
/// (hits/misses/evictions/invalidations) are what tests and the
/// micro_runtime bench observe.
///
/// The cache is not internally synchronized: callers that share one
/// cache across client threads must wrap it (the in-tree runners own one
/// cache per client, matching the one-invocation-at-a-time loop handle).
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_JIT_CODECACHE_H
#define SPICE_JIT_CODECACHE_H

#include "core/SpiceConfig.h"
#include "jit/Backend.h"
#include "transform/CanonicalLoop.h"

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>

namespace spice {
namespace jit {

/// Stable hash of every LoopOptions field that identifies a compilation
/// policy context (FNV-1a over the field values).
uint64_t hashLoopOptions(const core::LoopOptions &Opts);

/// Full compile pipeline: match is the caller's job (the CanonicalLoop
/// proves the shape); this lifts, optimizes (unless \p RunPasses is
/// false) and lowers. Returns null with \p WhyNot set when the frontend
/// refuses the region.
std::shared_ptr<const CompiledUnit>
compileLoop(const transform::CanonicalLoop &CL, bool RunPasses = true,
            std::string *WhyNot = nullptr);

struct CodeCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Invalidations = 0;
};

class CodeCache {
public:
  explicit CodeCache(size_t Capacity = 64) : Capacity(Capacity ? Capacity : 1) {}

  /// Cached unit for (function, header, options-hash), or null.
  std::shared_ptr<const CompiledUnit>
  lookup(const ir::Function *F, const ir::BasicBlock *Header,
         uint64_t OptsHash);

  /// Inserts \p Unit, evicting the least recently used entry at capacity.
  void insert(const ir::Function *F, const ir::BasicBlock *Header,
              uint64_t OptsHash, std::shared_ptr<const CompiledUnit> Unit);

  /// lookup() or compileLoop()+insert(). Null (with \p WhyNot) when the
  /// region is not compilable; refusals are not cached.
  std::shared_ptr<const CompiledUnit>
  getOrCompile(const transform::CanonicalLoop &CL,
               const core::LoopOptions &Opts, bool RunPasses = true,
               std::string *WhyNot = nullptr);

  /// Drops every unit lifted from \p F.
  void invalidate(const ir::Function *F);

  size_t size() const { return Entries.size(); }
  size_t capacity() const { return Capacity; }
  const CodeCacheStats &stats() const { return Stats; }

private:
  using Key = std::tuple<const ir::Function *, const ir::BasicBlock *,
                         uint64_t>;
  struct Entry {
    std::shared_ptr<const CompiledUnit> Unit;
    uint64_t Tick;
  };

  size_t Capacity;
  uint64_t NextTick = 0;
  std::map<Key, Entry> Entries;
  CodeCacheStats Stats;
};

} // namespace jit
} // namespace spice

#endif // SPICE_JIT_CODECACHE_H
