//===- jit/JitIR.h - Compact register-machine JIT IR ------------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JIT's internal representation: a linear, non-SSA register machine
/// over a flat frame of int64 registers. The frontend (Frontend.h) lifts
/// one canonical `SpiceTransform`-shaped loop region of an `ir::Function`
/// into a `JitFunction`; the passes (Passes.h) fold, dedup and strip it;
/// the backend (Backend.h) lowers each op to a pre-compiled C++ closure.
///
/// One compiled unit covers exactly one *outer-loop iteration*: execution
/// enters at pc 0 (the loop header, with the header-phi registers already
/// holding this iteration's live-ins), runs through the body -- inner
/// loops are ordinary intra-unit jumps -- and stops at one of two
/// terminators: `IterEnd` (the back edge to the header was taken; the
/// phi-copy trampoline before it has moved the next iteration's live-ins
/// into the phi registers) or `LoopExit` (the loop's single exit edge was
/// taken). This keeps the speculation protocol's granularity identical to
/// the interpreter's: the runtime observes the loop one iteration at a
/// time, exactly where the detection compare and the abort checks live.
///
/// Speculation safety is explicit in the IR: every memory access and
/// division is preceded by a guard op (`GuardLoad` / `GuardStore` /
/// `GuardDiv`) that re-checks what the interpreter asserts. On a
/// mis-speculated chunk those asserts can legitimately fail (stale
/// pointers, garbage cursors), so a failing guard *deopts* -- the backend
/// returns a deopt sentinel and the runner poisons the chunk (JitLoop.h)
/// instead of crashing.
///
/// Register classes (all indices into one frame):
///   * const-pool registers -- immutable, filled once per compiled unit;
///   * binding registers    -- immutable during an invocation, evaluated
///     from the source function's invariant live-ins by the entry slice;
///   * phi / scratch registers -- mutated by the unit itself.
/// The verifier rejects writes to the immutable classes.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_JIT_JITIR_H
#define SPICE_JIT_JITIR_H

#include "analysis/LoopCarried.h"
#include "ir/Function.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace spice {
namespace jit {

/// JIT IR opcodes. The ALU/compare group mirrors vm::ThreadContext's
/// applyBinary semantics exactly (wraparound add/sub/mul, 63-masked
/// shifts, 0/1 compares); the backend and the constant folder share one
/// evaluator (evalBinary) so they cannot drift apart.
enum class JitOp : uint8_t {
  // Binary ALU: Dst = A op B.
  Add,
  Sub,
  Mul,
  SDiv, // Must be dominated by a GuardDiv on the same operands.
  SRem, // Likewise.
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  SMin,
  SMax,
  // Comparisons: Dst = (A op B) ? 1 : 0.
  CmpEq,
  CmpNe,
  CmpSLt,
  CmpSLe,
  CmpSGt,
  CmpSGe,
  CmpULt,
  Select,  // Dst = A ? R[B] : R[C]
  Copy,    // Dst = A
  LoadImm, // Dst = Imm
  Load,    // Dst = Mem[A]; requires a dominating GuardLoad on A.
  Store,   // Mem[A] = B; requires a dominating GuardStore on A.
  // Guards: fall through when the condition holds, deopt otherwise.
  GuardLoad,  // deopt unless (uint64)A < MemWords
  GuardStore, // deopt unless (uint64)A < MemWords && A != 0
  GuardDiv,   // deopt unless B != 0 && !(A == INT64_MIN && B == -1)
  Jmp,        // pc = Target
  JmpIf,      // pc = A ? Target : pc + 1
  IterEnd,    // One outer iteration done; live-ins already advanced.
  LoopExit,   // The loop's exit edge was taken.
  Nop,        // Pass tombstone; stripped by compactNops().
};

const char *getJitOpName(JitOp Op);

inline bool isBinaryAlu(JitOp Op) {
  return Op >= JitOp::Add && Op <= JitOp::SMax;
}
inline bool isComparison(JitOp Op) {
  return Op >= JitOp::CmpEq && Op <= JitOp::CmpULt;
}
inline bool isGuard(JitOp Op) {
  return Op == JitOp::GuardLoad || Op == JitOp::GuardStore ||
         Op == JitOp::GuardDiv;
}
/// Ops after which control never falls through to pc + 1.
inline bool endsFlow(JitOp Op) {
  return Op == JitOp::Jmp || Op == JitOp::IterEnd || Op == JitOp::LoopExit;
}
/// True when the op writes its Dst register.
inline bool producesValue(JitOp Op) {
  return (isBinaryAlu(Op) || isComparison(Op)) || Op == JitOp::Select ||
         Op == JitOp::Copy || Op == JitOp::LoadImm || Op == JitOp::Load;
}
/// Ops that must never be removed by DCE regardless of register liveness.
inline bool hasSideEffects(JitOp Op) {
  return Op == JitOp::Store || isGuard(Op) || Op == JitOp::Jmp ||
         Op == JitOp::JmpIf || Op == JitOp::IterEnd || Op == JitOp::LoopExit;
}

/// Evaluates a binary ALU/compare op with the interpreter's exact
/// semantics. SDiv/SRem preconditions (nonzero divisor, no
/// INT64_MIN / -1 overflow) are the caller's responsibility -- both the
/// backend (guarded) and the constant folder (checks before folding)
/// satisfy them.
int64_t evalBinary(JitOp Op, int64_t L, int64_t R);

/// One JIT instruction. Dst/A/B/C are register indices (-1 when unused);
/// Imm is LoadImm's payload; Target is Jmp/JmpIf's instruction index.
struct JitInst {
  JitOp Op = JitOp::Nop;
  int32_t Dst = -1;
  int32_t A = -1;
  int32_t B = -1;
  int32_t C = -1;
  int64_t Imm = 0;
  uint32_t Target = 0;
};

/// Returns the source registers \p I reads into \p Regs (size >= 3);
/// returns how many.
unsigned getSourceRegs(const JitInst &I, int32_t Regs[3]);

/// A const-pool entry: frame register \p Reg always holds \p Value.
struct JitImm {
  uint32_t Reg;
  int64_t Value;
};

/// A per-invocation binding: before each invocation the runner evaluates
/// \p Src (an Argument, GlobalVariable, or entry-slice Instruction of the
/// source function) and writes it into frame register \p Reg.
struct JitBinding {
  uint32_t Reg;
  const ir::Value *Src;
};

/// One reduction carried by the compiled loop. \p Reg is the frame slot
/// holding the running value; chunks start it at \p Identity and the
/// runner folds the true start value in exactly once after the merge.
/// Payload (argmin/argmax) kinds take the merge decision of the primary
/// reduction at \p PrimaryIndex.
struct JitReduction {
  analysis::ReductionKind Kind;
  uint32_t Reg = 0;
  int32_t PrimaryIndex = -1; ///< Index into Reductions; payload kinds only.
  int64_t Identity = 0;
  const ir::Instruction *Phi = nullptr; ///< Source header phi (exit slice).
  const ir::Value *StartValue = nullptr;
};

/// A lifted loop region plus the metadata the runner needs to drive it.
class JitFunction {
public:
  std::string Name;
  uint32_t NumRegs = 0;
  std::vector<JitInst> Insts;

  std::vector<JitImm> ConstPool;
  std::vector<JitBinding> Bindings;

  /// Speculated live-ins, in the canonical (header block) order the
  /// detection compare uses. Parallel arrays: frame register, source
  /// header phi, and its preheader start value.
  std::vector<uint32_t> SpecPhiRegs;
  std::vector<const ir::Instruction *> SpecPhis;
  std::vector<const ir::Value *> SpecPhiStarts;

  std::vector<JitReduction> Reductions;

  const ir::Function *Source = nullptr;
  const ir::BasicBlock *Header = nullptr;
  const ir::BasicBlock *Exit = nullptr;

  uint32_t newReg() { return NumRegs++; }

  /// Const-pool and binding registers are immutable inside the unit.
  bool isImmutableReg(uint32_t R) const {
    for (const JitImm &C : ConstPool)
      if (C.Reg == R)
        return true;
    for (const JitBinding &B : Bindings)
      if (B.Reg == R)
        return true;
    return false;
  }

  void print(std::ostream &OS) const;
};

/// Structural verifier for a JitFunction: register indices in range,
/// operand presence per op, jump targets in range, no fallthrough off the
/// end, no writes to immutable registers, spec-phi/reduction metadata
/// consistent. Returns human-readable errors (empty = valid).
std::vector<std::string> verifyJitFunction(const JitFunction &F);

} // namespace jit
} // namespace spice

#endif // SPICE_JIT_JITIR_H
