//===- sim/Cache.cpp - Private L1/L2 + shared L3 with invalidation --------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include <cstdint>

using namespace spice;
using namespace spice::sim;

bool CacheArray::lookup(uint64_t Line) {
  unsigned Set = setOf(Line);
  ++Clock;
  for (unsigned W = 0; W != Ways; ++W) {
    unsigned Idx = Set * Ways + W;
    if (Tags[Idx] == Line) {
      LRU[Idx] = Clock;
      ++Hits;
      return true;
    }
  }
  ++Misses;
  return false;
}

void CacheArray::fill(uint64_t Line) {
  unsigned Set = setOf(Line);
  ++Clock;
  unsigned Victim = Set * Ways;
  for (unsigned W = 0; W != Ways; ++W) {
    unsigned Idx = Set * Ways + W;
    if (Tags[Idx] == Line) { // Already present; refresh.
      LRU[Idx] = Clock;
      return;
    }
    if (LRU[Idx] < LRU[Victim])
      Victim = Idx;
  }
  Tags[Victim] = Line;
  LRU[Victim] = Clock;
}

bool CacheArray::invalidate(uint64_t Line) {
  unsigned Set = setOf(Line);
  for (unsigned W = 0; W != Ways; ++W) {
    unsigned Idx = Set * Ways + W;
    if (Tags[Idx] == Line) {
      Tags[Idx] = ~0ull;
      LRU[Idx] = 0;
      return true;
    }
  }
  return false;
}

void CacheArray::clear() {
  for (uint64_t &T : Tags)
    T = ~0ull;
  for (uint64_t &L : LRU)
    L = 0;
}

CacheSystem::CacheSystem(const MachineConfig &Config)
    : Config(Config), L3(Config.L3Sets, Config.L3Ways) {
  for (unsigned C = 0; C != Config.NumCores; ++C) {
    L1.emplace_back(Config.L1Sets, Config.L1Ways);
    L2.emplace_back(Config.L2Sets, Config.L2Ways);
  }
}

unsigned CacheSystem::loadCost(unsigned Core, uint64_t Addr) {
  uint64_t Line = lineOf(Addr);
  if (L1[Core].lookup(Line))
    return Config.L1Latency;
  if (L2[Core].lookup(Line)) {
    L1[Core].fill(Line);
    return Config.L2Latency;
  }
  unsigned Cost;
  if (L3.lookup(Line)) {
    Cost = Config.L3Latency;
  } else {
    L3.fill(Line);
    Cost = Config.MemLatency;
  }
  // Dirty in another core's private cache: snoop supplies the line.
  auto It = Directory.find(Line);
  if (It != Directory.end() && It->second.Dirty && It->second.Owner != Core)
    Cost = Config.L3Latency + Config.CacheToCachePenalty;
  L2[Core].fill(Line);
  L1[Core].fill(Line);
  return Cost;
}

unsigned CacheSystem::storeCost(unsigned Core, uint64_t Addr) {
  uint64_t Line = lineOf(Addr);
  // Write-invalidate: remove the line from every other private cache.
  for (unsigned C = 0; C != L1.size(); ++C) {
    if (C == Core)
      continue;
    L1[C].invalidate(Line);
    L2[C].invalidate(Line);
  }
  Directory[Line] = {Core, true};
  // L1 is write-through into the core's L2 (Table 1): hit cost when
  // present, otherwise allocate.
  unsigned Cost =
      L1[Core].lookup(Line) ? Config.L1Latency : Config.L2Latency;
  L1[Core].fill(Line);
  L2[Core].fill(Line);
  L3.fill(Line);
  return Cost;
}
