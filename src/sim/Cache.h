//===- sim/Cache.h - L1/L2 + shared L3 with invalidation --------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A latency-oriented cache model: set-associative L1/L2 per core and a
/// shared L3, with snoop-style write-invalidate coherence and a last-writer
/// directory that charges cache-to-cache transfer penalties. The model
/// tracks only tags (data lives in vm::Memory); its job is to make
/// pointer-chasing loads and cross-core value forwarding cost what they
/// cost on the paper's Table 1 machine.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SIM_CACHE_H
#define SPICE_SIM_CACHE_H

#include "sim/CostModel.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace spice {
namespace sim {

/// One set-associative tag array with LRU replacement.
class CacheArray {
public:
  CacheArray(unsigned Sets, unsigned Ways)
      : Sets(Sets), Ways(Ways), Tags(Sets * Ways, ~0ull),
        LRU(Sets * Ways, 0) {}

  bool lookup(uint64_t Line);
  void fill(uint64_t Line);
  bool invalidate(uint64_t Line);
  void clear();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  unsigned setOf(uint64_t Line) const {
    // Multiplicative hash spreads heap structures across sets.
    return static_cast<unsigned>((Line * 0x9e3779b97f4a7c15ULL) >> 32) %
           Sets;
  }

  unsigned Sets;
  unsigned Ways;
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> LRU;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// The full hierarchy: per-core L1/L2, shared L3, last-writer directory.
class CacheSystem {
public:
  CacheSystem(const MachineConfig &Config);

  /// Returns the latency of a load of \p Addr by \p Core and updates state.
  unsigned loadCost(unsigned Core, uint64_t Addr);

  /// Returns the latency of a store by \p Core and invalidates remote
  /// copies of the line.
  unsigned storeCost(unsigned Core, uint64_t Addr);

  uint64_t l1Hits(unsigned Core) const { return L1[Core].hits(); }
  uint64_t l1Misses(unsigned Core) const { return L1[Core].misses(); }

private:
  uint64_t lineOf(uint64_t Addr) const { return Addr / Config.LineWords; }

  const MachineConfig &Config;
  std::vector<CacheArray> L1;
  std::vector<CacheArray> L2;
  CacheArray L3;
  /// Line -> last writing core + dirty flag (write-back L2/L3).
  struct DirEntry {
    unsigned Owner;
    bool Dirty;
  };
  std::unordered_map<uint64_t, DirEntry> Directory;
};

} // namespace sim
} // namespace spice

#endif // SPICE_SIM_CACHE_H
