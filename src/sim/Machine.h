//===- sim/Machine.h - Discrete-event multicore simulator -------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine executes one IR thread per simulated core, advancing the core
/// with the smallest local clock (ties broken by core id) so that shared
/// memory is sequentially consistent in simulated time and runs are fully
/// deterministic. It provides:
///
///   * per-instruction costing through CostModel + CacheSystem,
///   * latency-bearing bounded channels (the paper's inter-core value
///     forwarding),
///   * per-core speculative write buffers (SpecBegin/SpecCommit/
///     SpecRollback), and
///   * the remote-resteer mechanism of paper section 3: a Resteer executed
///     on one core redirects another core to its recovery block after
///     ResteerLatency cycles.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SIM_MACHINE_H
#define SPICE_SIM_MACHINE_H

#include "sim/Cache.h"
#include "vm/ThreadContext.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace spice {
namespace sim {

/// Result of a completed simulation.
struct SimResult {
  /// Finish time of the last core (total execution time).
  uint64_t Cycles = 0;
  /// Finish time of core 0 (the main thread in Spice programs).
  uint64_t MainCycles = 0;
  std::vector<uint64_t> CoreFinishCycles;
  std::vector<uint64_t> CoreInstructions;
  std::vector<int64_t> ReturnValues;
  uint64_t ChannelMessages = 0;
  uint64_t Resteers = 0;
  uint64_t Conflicts = 0;
};

/// A multicore machine executing one function per core over shared memory.
class Machine {
public:
  Machine(const MachineConfig &Config, vm::Memory &Mem);
  ~Machine();

  /// Adds a thread pinned to the next free core. Functions must be
  /// renumbered. Returns the core id.
  unsigned addThread(const ir::Function &F, std::vector<int64_t> Args);

  /// Runs all threads to completion and returns timing results. Fatal on
  /// deadlock or when MaxCycles is exceeded.
  SimResult run();

  const MachineConfig &getConfig() const { return Config; }

private:
  friend class CoreEnv;

  struct Message {
    int64_t Value;
    uint64_t ReadyTime;
  };
  struct ChannelState {
    std::deque<Message> Queue;
  };
  struct PendingResteer {
    uint64_t Time;
    const ir::BasicBlock *Target;
  };
  struct CoreState {
    std::unique_ptr<vm::ExecutionEnv> Env;
    std::unique_ptr<vm::ThreadContext> Thread;
    uint64_t Clock = 0;
    uint64_t Instructions = 0;
    bool Finished = false;
    int64_t ReturnValue = 0;
    /// Channel this core is blocked on (-1 when runnable). A core waiting
    /// on an empty channel is only rescheduled by a send to that channel.
    int64_t WaitChannel = -1;
    std::optional<PendingResteer> Resteer;
    /// Buffered speculative stores (addr -> value), program order kept for
    /// deterministic commit.
    std::vector<std::pair<uint64_t, int64_t>> SpecLog;
    std::unordered_map<uint64_t, int64_t> SpecMap;
    /// First value read from each address while speculative. Commit-time
    /// value validation: if memory then differs, the chunk read stale data
    /// and must squash (value-based conflict detection; silent re-writes
    /// of the same value — the common case in mcf's refresh_potential —
    /// validate cleanly).
    std::unordered_map<uint64_t, int64_t> SpecReads;
    bool Speculative = false;
  };

  ChannelState &channel(int64_t Id);
  void stepCore(unsigned CoreId);
  /// Picks the runnable core with the smallest clock; ~0u when none.
  unsigned pickNextCore() const;

  MachineConfig Config;
  vm::Memory &Mem;
  CacheSystem Caches;
  std::vector<CoreState> Cores;
  std::unordered_map<int64_t, ChannelState> Channels;
  uint64_t ChannelMessages = 0;
  uint64_t ResteerCount = 0;
  uint64_t ConflictsDetected = 0;
};

} // namespace sim
} // namespace spice

#endif // SPICE_SIM_MACHINE_H
