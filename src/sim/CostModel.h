//===- sim/CostModel.h - Machine configuration and op costs -----*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MachineConfig mirrors the paper's Table 1 (4-core Itanium 2 CMP model):
/// L1 1 cycle, L2 7 cycles, shared L3 >12 cycles, main memory 141 cycles,
/// snoop-based write-invalidate coherence, and a multi-cycle inter-core
/// interconnect. Non-memory opcodes get small fixed costs; memory costs
/// come from the cache model.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SIM_COSTMODEL_H
#define SPICE_SIM_COSTMODEL_H

#include "ir/Instruction.h"

#include <cstdint>

namespace spice {
namespace sim {

/// Timing and structure parameters of the simulated multicore.
struct MachineConfig {
  unsigned NumCores = 4;

  // --- Cache hierarchy (Table 1) ---
  bool EnableCaches = true;
  unsigned LineWords = 8;     ///< 64-byte lines (8 x 8-byte words).
  unsigned L1Sets = 64;       ///< 16KB, 4-way, 64B lines.
  unsigned L1Ways = 4;
  unsigned L1Latency = 1;
  unsigned L2Sets = 256;      ///< 256KB (approximated with 64B lines), 8-way.
  unsigned L2Ways = 8;
  unsigned L2Latency = 7;
  unsigned L3Sets = 2048;     ///< 1.5MB shared, 12-way.
  unsigned L3Ways = 12;
  unsigned L3Latency = 12;
  unsigned MemLatency = 141;
  /// Extra cycles for a dirty line supplied by another core's cache
  /// (snoop + cache-to-cache transfer).
  unsigned CacheToCachePenalty = 12;

  // --- Interconnect ---
  /// Cycles for a value sent on a channel to become visible remotely.
  unsigned ChannelLatency = 16;
  /// Channel capacity in values; sends block when full.
  unsigned ChannelCapacity = 64;
  /// Cycles from a resteer instruction to the target core redirecting.
  unsigned ResteerLatency = 32;

  // --- Speculation ---
  /// Per-word cost of publishing buffered speculative stores on commit.
  unsigned CommitCostPerWord = 2;
  /// Cost of discarding the speculative buffer.
  unsigned RollbackCost = 8;

  // --- Execution ---
  uint64_t MaxCycles = 1ull << 40; ///< Deadlock/livelock guard.

  /// Fixed issue cost of \p Op excluding memory-hierarchy latency.
  unsigned baseCost(ir::Opcode Op) const {
    switch (Op) {
    case ir::Opcode::Mul:
      return 3;
    case ir::Opcode::SDiv:
    case ir::Opcode::SRem:
      return 12;
    case ir::Opcode::SpecCommit:
      return 1; // Plus CommitCostPerWord per buffered word.
    case ir::Opcode::SpecRollback:
      return RollbackCost;
    default:
      return 1;
    }
  }
};

} // namespace sim
} // namespace spice

#endif // SPICE_SIM_COSTMODEL_H
