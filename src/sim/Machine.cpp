//===- sim/Machine.cpp - Discrete-event multicore simulator ---------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

using namespace spice;
using namespace spice::sim;
using namespace spice::ir;

namespace spice {
namespace sim {

/// The world as seen by one simulated core: memory through the cache model
/// and the speculative buffer, channels with latency, resteer postings.
/// Lives in the .cpp: only Machine ever instantiates it.
class CoreEnv : public vm::ExecutionEnv {
public:
  CoreEnv(Machine &M, unsigned CoreId) : M(M), CoreId(CoreId) {}

  /// Cycles accumulated by the current instruction beyond its base cost.
  unsigned takeExtraCost() {
    unsigned C = ExtraCost;
    ExtraCost = 0;
    return C;
  }

  int64_t load(uint64_t Addr) override;
  void store(uint64_t Addr, int64_t V) override;
  bool send(int64_t Chan, int64_t V) override;
  std::optional<int64_t> recv(int64_t Chan) override;
  void specBegin() override;
  bool specCommit() override;
  void specRollback() override;
  void resteer(int64_t CoreId, const ir::BasicBlock *Target) override;

private:
  Machine &M;
  unsigned CoreId;
  unsigned ExtraCost = 0;
};

} // namespace sim
} // namespace spice

Machine::Machine(const MachineConfig &Config, vm::Memory &Mem)
    : Config(Config), Mem(Mem), Caches(this->Config) {}

Machine::~Machine() = default;

unsigned Machine::addThread(const Function &F, std::vector<int64_t> Args) {
  assert(Cores.size() < Config.NumCores && "machine is out of cores");
  unsigned CoreId = static_cast<unsigned>(Cores.size());
  Cores.push_back({});
  CoreState &CS = Cores.back();
  auto Env = std::make_unique<CoreEnv>(*this, CoreId);
  CS.Thread =
      std::make_unique<vm::ThreadContext>(F, Mem, *Env, std::move(Args));
  CS.Env = std::move(Env);
  return CoreId;
}

Machine::ChannelState &Machine::channel(int64_t Id) { return Channels[Id]; }

unsigned Machine::pickNextCore() const {
  unsigned Best = ~0u;
  for (unsigned I = 0; I != Cores.size(); ++I) {
    const CoreState &CS = Cores[I];
    if (CS.Finished || CS.WaitChannel >= 0)
      continue;
    if (Best == ~0u || CS.Clock < Cores[Best].Clock)
      Best = I;
  }
  return Best;
}

void Machine::stepCore(unsigned CoreId) {
  CoreState &CS = Cores[CoreId];

  // Apply a due resteer before fetching the next instruction.
  if (CS.Resteer && CS.Resteer->Time <= CS.Clock) {
    CS.Thread->jumpTo(CS.Resteer->Target);
    CS.Resteer.reset();
  }

  auto *Env = static_cast<CoreEnv *>(CS.Env.get());
  vm::StepResult R = CS.Thread->step();
  unsigned Cost = Config.baseCost(R.Inst->getOpcode()) + Env->takeExtraCost();

  switch (R.Status) {
  case vm::StepStatus::Blocked:
    // Send into a full channel: retry after a cycle. Recv marked the wait
    // channel itself (it must distinguish empty from not-ready).
    if (R.Inst->getOpcode() == Opcode::Send)
      CS.Clock += 1;
    return;
  case vm::StepStatus::Returned:
    CS.Finished = true;
    CS.ReturnValue = CS.Thread->getReturnValue();
    break;
  case vm::StepStatus::Halted:
    CS.Finished = true;
    break;
  case vm::StepStatus::Ran:
    break;
  }
  CS.Clock += Cost;
  CS.Instructions += 1;
}

SimResult Machine::run() {
  assert(!Cores.empty() && "no threads added");
  for (;;) {
    unsigned Next = pickNextCore();
    if (Next == ~0u) {
      // Either everything finished, or every live core waits on a channel.
      bool AllDone = true;
      for (const CoreState &CS : Cores)
        AllDone &= CS.Finished;
      if (AllDone)
        break;
      spice_unreachable("simulated deadlock: all live cores blocked");
    }
    if (Cores[Next].Clock > Config.MaxCycles)
      spice_unreachable("simulation exceeded MaxCycles (livelock?)");
    stepCore(Next);
  }

  SimResult Res;
  Res.CoreFinishCycles.reserve(Cores.size());
  for (CoreState &CS : Cores) {
    Res.CoreFinishCycles.push_back(CS.Clock);
    Res.CoreInstructions.push_back(CS.Instructions);
    Res.ReturnValues.push_back(CS.ReturnValue);
    Res.Cycles = std::max(Res.Cycles, CS.Clock);
  }
  Res.MainCycles = Res.CoreFinishCycles.front();
  Res.ChannelMessages = ChannelMessages;
  Res.Resteers = ResteerCount;
  Res.Conflicts = ConflictsDetected;
  return Res;
}

//===----------------------------------------------------------------------===//
// CoreEnv
//===----------------------------------------------------------------------===//

int64_t CoreEnv::load(uint64_t Addr) {
  Machine::CoreState &CS = M.Cores[CoreId];
  if (M.Config.EnableCaches)
    ExtraCost += M.Caches.loadCost(CoreId, Addr);
  // Read own speculative writes first.
  if (CS.Speculative) {
    auto It = CS.SpecMap.find(Addr);
    if (It != CS.SpecMap.end())
      return It->second;
    int64_t V = M.Mem.load(Addr);
    CS.SpecReads.emplace(Addr, V); // First read wins for validation.
    return V;
  }
  return M.Mem.load(Addr);
}

void CoreEnv::store(uint64_t Addr, int64_t V) {
  Machine::CoreState &CS = M.Cores[CoreId];
  if (CS.Speculative) {
    // Buffered: cheap, invisible to other cores until commit.
    CS.SpecLog.push_back({Addr, V});
    CS.SpecMap[Addr] = V;
    ExtraCost += M.Config.L1Latency;
    return;
  }
  if (M.Config.EnableCaches)
    ExtraCost += M.Caches.storeCost(CoreId, Addr);
  M.Mem.store(Addr, V);
}

bool CoreEnv::send(int64_t Chan, int64_t V) {
  Machine::ChannelState &Ch = M.channel(Chan);
  if (Ch.Queue.size() >= M.Config.ChannelCapacity)
    return false;
  Machine::CoreState &CS = M.Cores[CoreId];
  uint64_t Ready = CS.Clock + M.Config.ChannelLatency;
  Ch.Queue.push_back({V, Ready});
  ++M.ChannelMessages;
  // Wake receivers parked on this channel.
  for (Machine::CoreState &Other : M.Cores) {
    if (Other.WaitChannel != Chan)
      continue;
    Other.WaitChannel = -1;
    Other.Clock = std::max(Other.Clock, Ready);
  }
  return true;
}

std::optional<int64_t> CoreEnv::recv(int64_t Chan) {
  Machine::ChannelState &Ch = M.channel(Chan);
  Machine::CoreState &CS = M.Cores[CoreId];
  if (Ch.Queue.empty()) {
    // Park until a send wakes this core.
    CS.WaitChannel = Chan;
    return std::nullopt;
  }
  const Machine::Message &Msg = Ch.Queue.front();
  if (Msg.ReadyTime > CS.Clock) {
    // In flight: fast-forward to its arrival and retry.
    CS.Clock = Msg.ReadyTime;
    return std::nullopt;
  }
  int64_t V = Msg.Value;
  Ch.Queue.pop_front();
  return V;
}

void CoreEnv::specBegin() {
  Machine::CoreState &CS = M.Cores[CoreId];
  assert(!CS.Speculative && "nested spec.begin");
  CS.Speculative = true;
}

bool CoreEnv::specCommit() {
  Machine::CoreState &CS = M.Cores[CoreId];
  assert(CS.Speculative && "spec.commit outside speculation");
  // Conflict check (paper section 3, "Conflict Detection"): validate every
  // speculatively read location against commit-time memory. Chunks commit
  // in iteration order, so passing validation means this chunk's execution
  // is equivalent to running serially after its predecessors.
  bool Conflict = false;
  for (const auto &[Addr, SeenValue] : CS.SpecReads) {
    if (M.Mem.load(Addr) != SeenValue) {
      Conflict = true;
      break;
    }
  }
  if (Conflict) {
    ++M.ConflictsDetected;
    ExtraCost += M.Config.RollbackCost;
  } else {
    for (const auto &[Addr, V] : CS.SpecLog) {
      if (M.Config.EnableCaches)
        M.Caches.storeCost(CoreId, Addr);
      M.Mem.store(Addr, V);
      ExtraCost += M.Config.CommitCostPerWord;
    }
  }
  CS.SpecLog.clear();
  CS.SpecMap.clear();
  CS.SpecReads.clear();
  CS.Speculative = false;
  return Conflict;
}

void CoreEnv::specRollback() {
  Machine::CoreState &CS = M.Cores[CoreId];
  CS.SpecLog.clear();
  CS.SpecMap.clear();
  CS.SpecReads.clear();
  CS.Speculative = false;
}

void CoreEnv::resteer(int64_t TargetCore, const ir::BasicBlock *Target) {
  assert(TargetCore >= 0 &&
         static_cast<size_t>(TargetCore) < M.Cores.size() &&
         "resteer target out of range");
  Machine::CoreState &CS = M.Cores[CoreId];
  Machine::CoreState &TargetCS = M.Cores[static_cast<size_t>(TargetCore)];
  assert(!TargetCS.Finished && "resteer of a finished core");
  TargetCS.Resteer = {CS.Clock + M.Config.ResteerLatency, Target};
  // A parked core must be released so it can observe the resteer.
  if (TargetCS.WaitChannel >= 0) {
    TargetCS.WaitChannel = -1;
    TargetCS.Clock = std::max(TargetCS.Clock, TargetCS.Resteer->Time);
  }
  ++M.ResteerCount;
}
