//===- topology/Topology.h - Hardware topology discovery --------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model behind NUMA-aware placement (docs/topology.md): a
/// Topology is a set of cpu slots grouped into nodes. Three ways to get
/// one:
///
///  * discover() -- the real machine: /sys/devices/system/node parsed
///    and intersected with this process's sched_getaffinity mask, with
///    a flat single-node fallback when sysfs is absent (non-Linux,
///    containers without /sys).
///  * fromNodeSizes({8, 8}) -- a deterministic *synthetic* topology for
///    tests and single-node CI (the TopologyOverride path of
///    topology::PlacementConfig). Synthetic cpus are never pinned to.
///  * fromEnv() -- the SPICE_TOPOLOGY environment knob: a comma-
///    separated list of per-node cpu counts ("8,8" = two nodes of
///    eight, "12,4" = one fat and one thin node). Malformed specs abort
///    with a diagnostic rather than silently running topology-blind.
///
/// A "cpu" here is a schedulable slot; workers of one node that wrap
/// onto the same slot (more workers than cpus) count as sharing a core,
/// which is what the same-core steal preference keys on. The policy
/// layer consuming this model is topology::Placement.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_TOPOLOGY_TOPOLOGY_H
#define SPICE_TOPOLOGY_TOPOLOGY_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spice {
namespace topology {

/// Immutable machine model: cpu slots grouped into NUMA nodes. Cheap to
/// copy (two small vectors); an empty topology means "unknown machine"
/// and disables placement.
class Topology {
public:
  Topology() = default;

  /// Flat machine: one node holding \p NumCpus cpus (os ids 0..N-1).
  /// Synthetic (never pinned to).
  static Topology singleNode(unsigned NumCpus);

  /// Synthetic topology from per-node cpu counts; os cpu ids are
  /// assigned sequentially across nodes. Nodes with zero cpus are
  /// dropped. The deterministic fake-topology injection path for tests
  /// and single-node CI.
  static Topology fromNodeSizes(const std::vector<unsigned> &CpusPerNode);

  /// Parses a SPICE_TOPOLOGY spec: comma-separated per-node cpu counts,
  /// e.g. "8" (one node), "8,8" (2x8), "12,4" (asymmetric). Returns
  /// nullopt on a malformed spec (empty, non-numeric, zero total cpus).
  static std::optional<Topology> parse(std::string_view Spec);

  /// The SPICE_TOPOLOGY environment knob: nullopt when unset, the
  /// parsed synthetic topology when set. A set-but-malformed value
  /// aborts with a diagnostic -- an operator asking for placement must
  /// not silently run topology-blind.
  static std::optional<Topology> fromEnv();

  /// The real machine: sysfs NUMA nodes intersected with this process's
  /// affinity mask, falling back to a flat single node (of the affinity
  /// mask's size, or hardware_concurrency) when sysfs is unavailable.
  /// The result is non-synthetic: Placement may pin workers to its os
  /// cpu ids.
  static Topology discover();

  bool empty() const { return Cpus.empty(); }
  unsigned numCpus() const { return static_cast<unsigned>(Cpus.size()); }
  unsigned numNodes() const {
    return static_cast<unsigned>(NodeCpus.size());
  }

  /// Node of cpu slot \p Cpu (slots are dense indices 0..numCpus()-1).
  unsigned nodeOfCpu(unsigned Cpu) const { return Cpus[Cpu].Node; }

  /// OS cpu id behind slot \p Cpu (what sched_setaffinity pins to).
  unsigned osCpuOf(unsigned Cpu) const { return Cpus[Cpu].OsId; }

  /// Cpu slots of \p Node, in slot order.
  const std::vector<unsigned> &cpusOfNode(unsigned Node) const {
    return NodeCpus[Node];
  }

  /// True for fabricated topologies (fromNodeSizes/parse/fromEnv and
  /// the no-sysfs fallback): their os cpu ids are made up, so Placement
  /// never pins worker threads to them.
  bool synthetic() const { return Synthetic; }

  /// Human-readable shape, e.g. "2 nodes (8+8 cpus, synthetic)".
  std::string describe() const;

private:
  struct CpuSlot {
    unsigned OsId = 0;
    unsigned Node = 0;
  };

  static Topology build(const std::vector<std::vector<unsigned>> &OsIds,
                        bool Synthetic);

  std::vector<CpuSlot> Cpus;
  /// Cpu slot indices per node; nodes are dense 0..numNodes()-1.
  std::vector<std::vector<unsigned>> NodeCpus;
  bool Synthetic = true;
};

} // namespace topology
} // namespace spice

#endif // SPICE_TOPOLOGY_TOPOLOGY_H
