//===- topology/Topology.cpp - Hardware topology discovery ----------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "topology/Topology.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace spice {
namespace topology {

Topology Topology::build(const std::vector<std::vector<unsigned>> &OsIds,
                         bool Synthetic) {
  Topology T;
  T.Synthetic = Synthetic;
  for (const std::vector<unsigned> &Node : OsIds) {
    if (Node.empty())
      continue;
    std::vector<unsigned> Slots;
    Slots.reserve(Node.size());
    unsigned NodeIdx = static_cast<unsigned>(T.NodeCpus.size());
    for (unsigned OsId : Node) {
      Slots.push_back(static_cast<unsigned>(T.Cpus.size()));
      T.Cpus.push_back({OsId, NodeIdx});
    }
    T.NodeCpus.push_back(std::move(Slots));
  }
  return T;
}

Topology Topology::singleNode(unsigned NumCpus) {
  std::vector<unsigned> Ids(NumCpus);
  for (unsigned I = 0; I != NumCpus; ++I)
    Ids[I] = I;
  return build({Ids}, /*Synthetic=*/true);
}

Topology Topology::fromNodeSizes(const std::vector<unsigned> &CpusPerNode) {
  std::vector<std::vector<unsigned>> OsIds;
  unsigned Next = 0;
  for (unsigned Count : CpusPerNode) {
    std::vector<unsigned> Node(Count);
    for (unsigned I = 0; I != Count; ++I)
      Node[I] = Next++;
    OsIds.push_back(std::move(Node));
  }
  return build(OsIds, /*Synthetic=*/true);
}

std::optional<Topology> Topology::parse(std::string_view Spec) {
  std::vector<unsigned> Sizes;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Field = Spec.substr(
        Pos, Comma == std::string_view::npos ? Spec.size() - Pos
                                             : Comma - Pos);
    // Tolerate surrounding whitespace, reject anything non-numeric.
    while (!Field.empty() && (Field.front() == ' ' || Field.front() == '\t'))
      Field.remove_prefix(1);
    while (!Field.empty() && (Field.back() == ' ' || Field.back() == '\t'))
      Field.remove_suffix(1);
    if (Field.empty())
      return std::nullopt;
    unsigned Value = 0;
    for (char C : Field) {
      if (C < '0' || C > '9')
        return std::nullopt;
      unsigned Digit = static_cast<unsigned>(C - '0');
      if (Value > (~0u - Digit) / 10)
        return std::nullopt;
      Value = Value * 10 + Digit;
    }
    Sizes.push_back(Value);
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  Topology T = fromNodeSizes(Sizes);
  if (T.empty())
    return std::nullopt;
  return T;
}

std::optional<Topology> Topology::fromEnv() {
  const char *Spec = std::getenv("SPICE_TOPOLOGY");
  if (!Spec)
    return std::nullopt;
  std::optional<Topology> T = parse(Spec);
  if (!T)
    reportFatalError("SPICE_TOPOLOGY is set but not a comma-separated list "
                     "of per-node cpu counts (e.g. \"8,8\")",
                     __FILE__, __LINE__);
  return T;
}

#if defined(__linux__)
namespace {

/// Parses a sysfs cpulist ("0-7,16-23") into os cpu ids. Returns false
/// on any token it does not understand so callers can fall back.
bool parseCpuList(const std::string &List, std::vector<unsigned> &Out) {
  std::istringstream In(List);
  std::string Tok;
  while (std::getline(In, Tok, ',')) {
    while (!Tok.empty() && (Tok.back() == '\n' || Tok.back() == ' '))
      Tok.pop_back();
    if (Tok.empty())
      continue;
    size_t Dash = Tok.find('-');
    try {
      if (Dash == std::string::npos) {
        Out.push_back(static_cast<unsigned>(std::stoul(Tok)));
      } else {
        unsigned Lo = static_cast<unsigned>(std::stoul(Tok.substr(0, Dash)));
        unsigned Hi = static_cast<unsigned>(std::stoul(Tok.substr(Dash + 1)));
        if (Hi < Lo)
          return false;
        for (unsigned C = Lo; C <= Hi; ++C)
          Out.push_back(C);
      }
    } catch (const std::exception &) {
      return false;
    }
  }
  return true;
}

} // namespace
#endif // defined(__linux__)

Topology Topology::discover() {
#if defined(__linux__)
  // The affinity mask bounds everything: cpus outside it are invisible
  // to this process no matter what sysfs says.
  cpu_set_t Mask;
  bool HaveMask = sched_getaffinity(0, sizeof(Mask), &Mask) == 0;

  std::vector<unsigned> OnlineNodes;
  {
    std::ifstream In("/sys/devices/system/node/online");
    std::string List;
    if (In && std::getline(In, List))
      if (!parseCpuList(List, OnlineNodes))
        OnlineNodes.clear();
  }

  std::vector<std::vector<unsigned>> OsIds;
  for (unsigned Node : OnlineNodes) {
    std::ifstream In("/sys/devices/system/node/node" + std::to_string(Node) +
                     "/cpulist");
    std::string List;
    if (!In || !std::getline(In, List))
      continue;
    std::vector<unsigned> Cpus;
    if (!parseCpuList(List, Cpus))
      continue;
    if (HaveMask) {
      std::vector<unsigned> Allowed;
      for (unsigned C : Cpus)
        if (C < CPU_SETSIZE && CPU_ISSET(C, &Mask))
          Allowed.push_back(C);
      Cpus = std::move(Allowed);
    }
    if (!Cpus.empty())
      OsIds.push_back(std::move(Cpus));
  }
  if (!OsIds.empty())
    return build(OsIds, /*Synthetic=*/false);

  // No usable sysfs view (non-NUMA kernel, masked /sys): flat fallback
  // sized by the affinity mask so worker counts still match reality.
  if (HaveMask) {
    std::vector<unsigned> Cpus;
    for (unsigned C = 0; C < CPU_SETSIZE; ++C)
      if (CPU_ISSET(C, &Mask))
        Cpus.push_back(C);
    if (!Cpus.empty())
      return build({Cpus}, /*Synthetic=*/true);
  }
#endif // defined(__linux__)
  unsigned N = std::max(1u, std::thread::hardware_concurrency());
  return singleNode(N);
}

std::string Topology::describe() const {
  if (empty())
    return "empty topology";
  std::ostringstream Out;
  Out << numNodes() << (numNodes() == 1 ? " node (" : " nodes (");
  for (unsigned N = 0; N != numNodes(); ++N) {
    if (N)
      Out << "+";
    Out << NodeCpus[N].size();
  }
  Out << (numCpus() == 1 ? " cpu" : " cpus");
  if (Synthetic)
    Out << ", synthetic";
  Out << ")";
  return Out.str();
}

} // namespace topology
} // namespace spice
