//===- topology/Placement.h - NUMA-aware worker placement -------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy layer over topology::Topology (docs/topology.md): given a
/// worker count, Placement assigns every pool worker a home node and a
/// cpu slot, and answers the locality questions the runtime asks:
///
///  * WorkerPool leases lanes node-contiguously and keeps per-node
///    session/SpecWriteBuffer freelist shards (nodeOfWorker,
///    workerRangeOfNode).
///  * ChunkDeques orders steal victims same-core -> same-node -> remote
///    (victimOrder).
///  * Scheduler::planGrants packs a loop's grant onto one node
///    (the per-node free-lane counts WorkerPool maintains).
///  * SpiceRuntime composes workerStartHook() in front of the user's
///    RuntimeConfig::WorkerStartHook to pin workers -- on real
///    (discovered) topologies only; synthetic ones never pin.
///
/// Workers are distributed over nodes proportionally to node cpu
/// counts (largest remainder, ties to the lower node id) and laid out
/// node-contiguously: node 0's workers first, then node 1's, so a
/// node's workers form one index range and "grant from one node" is
/// "grant one contiguous lane range". With placement off
/// (PlacementConfig::Mode::Off, the default) none of this engages and
/// the runtime behaves bit-for-bit as before.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_TOPOLOGY_PLACEMENT_H
#define SPICE_TOPOLOGY_PLACEMENT_H

#include "topology/Topology.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace spice {
namespace topology {

/// The RuntimeConfig::Topology knob: whether and how the runtime builds
/// a Placement at construction.
struct PlacementConfig {
  enum class Mode : uint8_t {
    /// No topology: the runtime behaves exactly as without this
    /// subsystem. The default.
    Off,
    /// Use SPICE_TOPOLOGY when set, else discover the real machine.
    Auto,
    /// Use the Fake topology below verbatim (tests, single-node CI).
    Override,
  };

  Mode M = Mode::Off;
  /// The injected topology for Mode::Override.
  Topology Fake;
  /// Pin worker threads to their node's cpus (real topologies only;
  /// synthetic topologies are never pinned to regardless).
  bool PinWorkers = true;

  static PlacementConfig off() { return {}; }
  static PlacementConfig automatic(bool Pin = true) {
    PlacementConfig C;
    C.M = Mode::Auto;
    C.PinWorkers = Pin;
    return C;
  }
  static PlacementConfig overrideWith(Topology T) {
    PlacementConfig C;
    C.M = Mode::Override;
    C.Fake = std::move(T);
    return C;
  }

  bool enabled() const { return M != Mode::Off; }
};

/// Immutable worker->node/cpu assignment for one pool size. Shared by
/// the pool, its deques, and the start hook via shared_ptr; all
/// accessors are const and thread-safe.
class Placement {
public:
  Placement(Topology T, unsigned NumWorkers, bool PinWorkers);

  unsigned numWorkers() const {
    return static_cast<unsigned>(WorkerNode.size());
  }
  unsigned numNodes() const { return Topo.numNodes(); }

  /// Home node of pool worker \p Worker.
  unsigned nodeOfWorker(unsigned Worker) const { return WorkerNode[Worker]; }

  /// Cpu slot (Topology index) of pool worker \p Worker. Workers beyond
  /// a node's cpu count wrap onto its slots round-robin; two workers on
  /// the same slot count as sharing a core for steal ordering.
  unsigned cpuOfWorker(unsigned Worker) const { return WorkerCpu[Worker]; }

  /// Worker-index range [first, last) of \p Node. Workers are laid out
  /// node-contiguously, so this is the node's lanes in the pool.
  std::pair<unsigned, unsigned> workerRangeOfNode(unsigned Node) const {
    return {NodeFirst[Node], NodeFirst[Node] + NodeCount[Node]};
  }

  /// Workers assigned to \p Node (== range width of workerRangeOfNode).
  unsigned workersOfNode(unsigned Node) const { return NodeCount[Node]; }

  const Topology &topology() const { return Topo; }

  /// True when workerStartHook() will actually pin: pinning requested
  /// and the topology's os cpu ids are real (non-synthetic).
  bool pinsWorkers() const { return Pin && !Topo.synthetic(); }

  /// Start hook for WorkerPool: pins worker I to its node's cpus (when
  /// pinsWorkers()), then runs \p Chained (the user's hook). The
  /// returned callable owns its data by value; it outlives this
  /// Placement safely.
  std::function<void(unsigned)>
  workerStartHook(std::function<void(unsigned)> Chained) const;

  /// Steal-victim order for \p Lane among lanes with the given cpu
  /// slots and nodes: same-cpu lanes first, then same-node, then
  /// remote, each class in ring order starting after \p Lane. Pure;
  /// exposed for tests. \p Out is cleared and filled with the
  /// LaneCpus.size()-1 victims.
  static void victimOrder(unsigned Lane, const std::vector<unsigned> &LaneCpus,
                          const std::vector<unsigned> &LaneNodes,
                          std::vector<unsigned> &Out);

private:
  Topology Topo;
  bool Pin = false;
  std::vector<unsigned> WorkerNode;  // worker -> node
  std::vector<unsigned> WorkerCpu;   // worker -> cpu slot
  std::vector<unsigned> NodeFirst;   // node -> first worker index
  std::vector<unsigned> NodeCount;   // node -> worker count
};

/// Builds the runtime's Placement from its config knob: null when
/// placement is Off, the resolved topology is empty, or there are no
/// workers. Mode::Auto resolves SPICE_TOPOLOGY first, then discovers
/// the real machine.
std::shared_ptr<const Placement> makePlacement(const PlacementConfig &C,
                                               unsigned NumWorkers);

/// The start hook WorkerPool should run: the placement's pinning hook
/// chained in front of \p UserHook, or \p UserHook unchanged when \p P
/// is null.
std::function<void(unsigned)>
composedStartHook(const std::shared_ptr<const Placement> &P,
                  std::function<void(unsigned)> UserHook);

} // namespace topology
} // namespace spice

#endif // SPICE_TOPOLOGY_PLACEMENT_H
