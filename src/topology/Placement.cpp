//===- topology/Placement.cpp - NUMA-aware worker placement ---------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "topology/Placement.h"

#include <algorithm>

#if defined(__linux__)
#include <sched.h>
#endif

namespace spice {
namespace topology {

Placement::Placement(Topology T, unsigned NumWorkers, bool PinWorkers)
    : Topo(std::move(T)), Pin(PinWorkers) {
  unsigned Nodes = Topo.numNodes();
  NodeFirst.assign(Nodes, 0);
  NodeCount.assign(Nodes, 0);
  if (!Nodes || !NumWorkers)
    return;

  // Distribute workers proportionally to node cpu counts by largest
  // remainder; ties go to the lower node id so the layout is
  // deterministic. Every remaining worker after the floor pass lands
  // somewhere, so the counts always sum to NumWorkers.
  unsigned TotalCpus = Topo.numCpus();
  std::vector<std::pair<unsigned, unsigned>> Remainder; // (node, remainder)
  unsigned Assigned = 0;
  for (unsigned N = 0; N != Nodes; ++N) {
    unsigned Cpus = static_cast<unsigned>(Topo.cpusOfNode(N).size());
    uint64_t Scaled = static_cast<uint64_t>(NumWorkers) * Cpus;
    NodeCount[N] = static_cast<unsigned>(Scaled / TotalCpus);
    Assigned += NodeCount[N];
    Remainder.push_back({N, static_cast<unsigned>(Scaled % TotalCpus)});
  }
  std::stable_sort(Remainder.begin(), Remainder.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  for (unsigned I = 0; Assigned < NumWorkers; ++I, ++Assigned)
    ++NodeCount[Remainder[I % Nodes].first];

  // Node-contiguous layout: node 0's workers first. Within a node,
  // workers round-robin over its cpu slots (oversubscription wraps, so
  // a shared slot is what "same core" means downstream).
  WorkerNode.resize(NumWorkers);
  WorkerCpu.resize(NumWorkers);
  unsigned W = 0;
  for (unsigned N = 0; N != Nodes; ++N) {
    NodeFirst[N] = W;
    const std::vector<unsigned> &Slots = Topo.cpusOfNode(N);
    for (unsigned I = 0; I != NodeCount[N]; ++I, ++W) {
      WorkerNode[W] = N;
      WorkerCpu[W] = Slots[I % Slots.size()];
    }
  }
}

std::function<void(unsigned)>
Placement::workerStartHook(std::function<void(unsigned)> Chained) const {
  if (!pinsWorkers())
    return Chained;
  // Capture per-worker cpu masks by value: the hook must not dangle if
  // the Placement dies first (it is shared, but cheap insurance).
  std::vector<std::vector<unsigned>> NodeOsCpus(numWorkers());
  for (unsigned W = 0; W != numWorkers(); ++W) {
    const std::vector<unsigned> &Slots = Topo.cpusOfNode(WorkerNode[W]);
    for (unsigned Slot : Slots)
      NodeOsCpus[W].push_back(Topo.osCpuOf(Slot));
  }
  return [NodeOsCpus = std::move(NodeOsCpus),
          Chained = std::move(Chained)](unsigned Worker) {
#if defined(__linux__)
    // Pin to the whole home node, not the single slot: the kernel can
    // still balance within the node, and a failed pin (cgroup mask
    // shrank since discovery) is not worth dying over.
    if (Worker < NodeOsCpus.size() && !NodeOsCpus[Worker].empty()) {
      cpu_set_t Mask;
      CPU_ZERO(&Mask);
      for (unsigned OsCpu : NodeOsCpus[Worker])
        if (OsCpu < CPU_SETSIZE)
          CPU_SET(OsCpu, &Mask);
      (void)sched_setaffinity(0, sizeof(Mask), &Mask);
    }
#endif
    if (Chained)
      Chained(Worker);
  };
}

void Placement::victimOrder(unsigned Lane,
                            const std::vector<unsigned> &LaneCpus,
                            const std::vector<unsigned> &LaneNodes,
                            std::vector<unsigned> &Out) {
  size_t Lanes = LaneCpus.size();
  Out.clear();
  if (Lanes < 2)
    return;
  Out.reserve(Lanes - 1);
  // Three passes over the ring starting after Lane: same cpu slot
  // (sibling on a shared core), then same node, then remote. Ring
  // order within a class keeps thieves of one node from all converging
  // on the same victim.
  for (int Class = 0; Class != 3; ++Class) {
    for (size_t Off = 1; Off != Lanes; ++Off) {
      unsigned V = static_cast<unsigned>((Lane + Off) % Lanes);
      bool SameCpu = LaneCpus[V] == LaneCpus[Lane] &&
                     LaneNodes[V] == LaneNodes[Lane];
      bool SameNode = LaneNodes[V] == LaneNodes[Lane];
      int C = SameCpu ? 0 : SameNode ? 1 : 2;
      if (C == Class)
        Out.push_back(V);
    }
  }
}

std::shared_ptr<const Placement> makePlacement(const PlacementConfig &C,
                                               unsigned NumWorkers) {
  if (!C.enabled() || NumWorkers == 0)
    return nullptr;
  Topology T;
  if (C.M == PlacementConfig::Mode::Override) {
    T = C.Fake;
  } else {
    std::optional<Topology> Env = Topology::fromEnv();
    T = Env ? *Env : Topology::discover();
  }
  if (T.empty())
    return nullptr;
  return std::make_shared<Placement>(std::move(T), NumWorkers, C.PinWorkers);
}

std::function<void(unsigned)>
composedStartHook(const std::shared_ptr<const Placement> &P,
                  std::function<void(unsigned)> UserHook) {
  if (!P)
    return UserHook;
  return P->workerStartHook(std::move(UserHook));
}

} // namespace topology
} // namespace spice
