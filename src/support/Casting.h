//===- support/Casting.h - isa/cast/dyn_cast templates ----------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of LLVM's llvm/Support/Casting.h.
/// A class hierarchy participates by providing a Kind discriminator and a
/// static classof(const Base *) predicate on each subclass.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SUPPORT_CASTING_H
#define SPICE_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace spice {

/// Returns true if \p Val is an instance of the class \p To.
///
/// \p Val must be non-null; use isa_and_nonnull for possibly-null values.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// isa that tolerates a null pointer (a null pointer is not an instance of
/// anything).
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && To::classof(Val);
}

/// Checked cast: asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(&Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking cast: returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates a null input pointer.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return isa_and_nonnull<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace spice

#endif // SPICE_SUPPORT_CASTING_H
