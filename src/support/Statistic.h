//===- support/Statistic.h - Lightweight statistics counters ----*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters for runtime and compiler statistics, in the spirit of
/// LLVM's Statistic class but without global registration at static-init
/// time (the coding standard forbids static constructors). Statistics are
/// grouped into explicitly created StatisticRegistry objects.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SUPPORT_STATISTIC_H
#define SPICE_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace spice {

/// A registry of named, thread-safe counters.
class StatisticRegistry {
public:
  /// Increments the counter \p Name by \p Delta.
  void add(const std::string &Name, uint64_t Delta = 1) {
    counter(Name).fetch_add(Delta, std::memory_order_relaxed);
  }

  /// Sets the counter \p Name to \p V.
  void set(const std::string &Name, uint64_t V) {
    counter(Name).store(V, std::memory_order_relaxed);
  }

  /// Returns the current value of \p Name (0 if never touched).
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second.load();
  }

  /// Resets every counter to zero.
  void clear() { Counters.clear(); }

  /// Renders "name = value" lines sorted by name.
  std::string report() const {
    std::string Out;
    for (const auto &[Name, Value] : Counters) {
      Out += Name;
      Out += " = ";
      Out += std::to_string(Value.load());
      Out += '\n';
    }
    return Out;
  }

  /// Visits all counters in name order.
  template <typename Fn> void forEach(Fn F) const {
    for (const auto &[Name, Value] : Counters)
      F(Name, Value.load());
  }

private:
  std::atomic<uint64_t> &counter(const std::string &Name) {
    // map: stable addresses and deterministic iteration order.
    return Counters[Name];
  }

  std::map<std::string, std::atomic<uint64_t>> Counters;
};

} // namespace spice

#endif // SPICE_SUPPORT_STATISTIC_H
