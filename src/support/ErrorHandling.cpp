//===- support/ErrorHandling.cpp - Fatal errors and unreachable ----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

void spice::reportFatalError(const char *Msg, const char *File,
                             unsigned Line) {
  if (File)
    std::fprintf(stderr, "fatal error: %s (%s:%u)\n", Msg, File, Line);
  else
    std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}
