//===- support/ErrorHandling.cpp - Fatal errors and unreachable ----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

void spice::reportFatalError(const char *Msg, const char *File,
                             unsigned Line) {
  if (File)
    std::fprintf(stderr, "fatal error: %s (%s:%u)\n", Msg, File, Line);
  else
    std::fprintf(stderr, "fatal error: %s\n", Msg);
  std::abort();
}

void spice::reportDeprecationNote(const char *Msg) {
  // Deduplicated by message text so a deprecated call site in a hot loop
  // notes once, not once per call.
  static std::mutex M;
  static std::set<std::string> Seen;
  std::lock_guard<std::mutex> Lock(M);
  if (Seen.insert(Msg).second)
    std::fprintf(stderr, "deprecation note: %s\n", Msg);
}
