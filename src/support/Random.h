//===- support/Random.h - Deterministic random number engine ----*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64 seeding a xoshiro256**) used by
/// workload generators and property tests. Determinism across platforms
/// matters more than statistical strength here: every experiment must be
/// reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SUPPORT_RANDOM_H
#define SPICE_SUPPORT_RANDOM_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace spice {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
class RandomEngine {
public:
  explicit RandomEngine(uint64_t Seed = 0x5eed5eed5eed5eedULL) { seed(Seed); }

  /// Re-seeds the engine; identical seeds yield identical streams.
  void seed(uint64_t Seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t *S = State;
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow() with zero bound");
    // Debiased multiply-shift (Lemire). The rejection loop terminates fast.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t X = next();
      __uint128_t M = static_cast<__uint128_t>(X) * Bound;
      if (static_cast<uint64_t>(M) >= Threshold)
        return static_cast<uint64_t>(M >> 64);
    }
  }

  /// Returns a uniform value in the closed range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "nextInRange() with inverted range");
    uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
    return static_cast<int64_t>(static_cast<uint64_t>(Lo) +
                                (Span == 0 ? next() : nextBelow(Span)));
  }

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace spice

#endif // SPICE_SUPPORT_RANDOM_H
