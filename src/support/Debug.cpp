//===- support/Debug.cpp - Debug output macros ---------------------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Debug.h"

#include <set>
#include <string>

// Function-local static avoids a static constructor at load time.
static std::set<std::string> &debugTypes() {
  static std::set<std::string> Types;
  return Types;
}

bool spice::isDebugTypeEnabled(const char *Type) {
  const std::set<std::string> &Types = debugTypes();
  if (Types.empty())
    return false;
  return Types.count("all") || Types.count(Type);
}

void spice::enableDebugType(const char *Type) { debugTypes().insert(Type); }

void spice::clearDebugTypes() { debugTypes().clear(); }
