//===- support/ErrorHandling.h - Fatal errors and unreachable ---*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and the spice_unreachable marker. Library code does
/// not use exceptions; unrecoverable conditions abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SUPPORT_ERRORHANDLING_H
#define SPICE_SUPPORT_ERRORHANDLING_H

namespace spice {

/// Prints \p Msg (with source location when provided) to stderr and aborts.
[[noreturn]] void reportFatalError(const char *Msg, const char *File = nullptr,
                                   unsigned Line = 0);

/// Prints a loud "deprecation note: ..." to stderr, once per distinct
/// message per process (repeat calls with the same message are silent).
/// Execution continues; the note is a migration aid, not an error.
void reportDeprecationNote(const char *Msg);

} // namespace spice

/// Marks a point in code that should never be executed. Aborts with the
/// given message if reached; informs the optimizer in release builds.
#define spice_unreachable(Msg)                                                 \
  ::spice::reportFatalError(Msg, __FILE__, __LINE__)

#endif // SPICE_SUPPORT_ERRORHANDLING_H
