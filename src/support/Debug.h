//===- support/Debug.h - Debug output macros --------------------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPICE_DEBUG: debug-only trace output gated on a runtime debug-type set,
/// modeled on LLVM_DEBUG / -debug-only. Debug output goes to stderr and
/// compiles away entirely in NDEBUG builds.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SUPPORT_DEBUG_H
#define SPICE_SUPPORT_DEBUG_H

namespace spice {

/// Returns true if debug tracing is enabled for \p Type (or for all types).
bool isDebugTypeEnabled(const char *Type);

/// Enables debug tracing for \p Type; pass "all" to enable everything.
void enableDebugType(const char *Type);

/// Disables all debug tracing.
void clearDebugTypes();

} // namespace spice

#ifndef NDEBUG
#define SPICE_DEBUG(Type, Stmt)                                                \
  do {                                                                         \
    if (::spice::isDebugTypeEnabled(Type)) {                                   \
      Stmt;                                                                    \
    }                                                                          \
  } while (false)
#else
#define SPICE_DEBUG(Type, Stmt)                                                \
  do {                                                                         \
  } while (false)
#endif

#endif // SPICE_SUPPORT_DEBUG_H
