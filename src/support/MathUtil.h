//===- support/MathUtil.h - Small math helpers ------------------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometric mean and other small numeric helpers used by the benchmark
/// harnesses and the load-balancing planner.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_SUPPORT_MATHUTIL_H
#define SPICE_SUPPORT_MATHUTIL_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace spice {

/// Geometric mean of strictly positive values. Returns 0 for an empty input.
inline double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometricMean() requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Integer ceiling division for nonnegative operands.
inline uint64_t ceilDiv(uint64_t Num, uint64_t Den) {
  assert(Den != 0 && "ceilDiv() by zero");
  return (Num + Den - 1) / Den;
}

/// Returns true when |A - B| <= Tol * max(1, |A|, |B|).
inline bool approxEqual(double A, double B, double Tol = 1e-9) {
  double Scale = std::fmax(1.0, std::fmax(std::fabs(A), std::fabs(B)));
  return std::fabs(A - B) <= Tol * Scale;
}

} // namespace spice

#endif // SPICE_SUPPORT_MATHUTIL_H
