//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm, plus an
/// SSA dominance verifier (every use dominated by its definition) that
/// complements the structural ir::Verifier.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_ANALYSIS_DOMINATORS_H
#define SPICE_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

#include <string>
#include <vector>

namespace spice {
namespace analysis {

/// Immediate-dominator tree over the reachable blocks of a function.
class DominatorTree {
public:
  explicit DominatorTree(const CFGInfo &CFG);

  /// Immediate dominator of \p BB; null for the entry block and for
  /// unreachable blocks.
  ir::BasicBlock *getIDom(const ir::BasicBlock *BB) const;

  /// Returns true when \p A dominates \p B (reflexively). Unreachable
  /// blocks are dominated by nothing and dominate nothing but themselves.
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

  /// Returns true when instruction \p Def dominates the use of it in
  /// instruction \p User (for phis, the use point is the end of the
  /// corresponding incoming block).
  bool dominatesUse(const ir::Instruction *Def, const ir::Instruction *User,
                    unsigned OperandIdx) const;

  const CFGInfo &getCFG() const { return CFG; }

private:
  const CFGInfo &CFG;
  std::vector<int> IDom; // by RPO index; -1 = none/unreachable.
};

/// Checks that every operand use is dominated by its definition. Appends
/// problems to \p Errors; returns true when the function is in valid SSA.
bool verifySSADominance(const ir::Function &F, const DominatorTree &DT,
                        std::vector<std::string> *Errors);

} // namespace analysis
} // namespace spice

#endif // SPICE_ANALYSIS_DOMINATORS_H
