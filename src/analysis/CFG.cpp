//===- analysis/CFG.cpp - CFG predecessors and orderings ------------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

using namespace spice;
using namespace spice::analysis;
using namespace spice::ir;

CFGInfo::CFGInfo(const Function &F) : F(F) {
  for (const auto &BB : F) {
    Indices[BB.get()] = static_cast<unsigned>(Order.size());
    Order.push_back(BB.get());
  }
  Preds.resize(Order.size());
  for (BasicBlock *BB : Order)
    for (BasicBlock *Succ : BB->successors())
      Preds[getIndex(Succ)].push_back(BB);

  // Iterative post-order DFS from the entry.
  if (!Order.empty()) {
    std::vector<std::pair<BasicBlock *, size_t>> Stack;
    std::vector<BasicBlock *> PostOrder;
    Stack.push_back({Order.front(), 0});
    Reachable[Order.front()] = 1;
    while (!Stack.empty()) {
      auto &[BB, NextSucc] = Stack.back();
      std::vector<BasicBlock *> Succs = BB->successors();
      if (NextSucc < Succs.size()) {
        BasicBlock *S = Succs[NextSucc++];
        if (!Reachable.count(S)) {
          Reachable[S] = 1;
          Stack.push_back({S, 0});
        }
        continue;
      }
      PostOrder.push_back(BB);
      Stack.pop_back();
    }
    RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  }
  for (BasicBlock *BB : Order)
    if (!Reachable.count(BB))
      RPO.push_back(BB);
  for (unsigned I = 0, E = static_cast<unsigned>(RPO.size()); I != E; ++I)
    RPOIndices[RPO[I]] = I;
}
