//===- analysis/CFG.h - CFG predecessors and orderings ----------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFGInfo caches block indices, predecessor lists, and a reverse post-order
/// for one function. All other analyses build on it.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_ANALYSIS_CFG_H
#define SPICE_ANALYSIS_CFG_H

#include "ir/Function.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace spice {
namespace analysis {

/// Cached CFG shape for a single function. Invalidated by any structural
/// change to the function; rebuild by constructing a new CFGInfo.
class CFGInfo {
public:
  explicit CFGInfo(const ir::Function &F);

  const ir::Function &getFunction() const { return F; }

  unsigned getNumBlocks() const {
    return static_cast<unsigned>(Order.size());
  }

  /// Dense index of \p BB in function layout order.
  unsigned getIndex(const ir::BasicBlock *BB) const {
    auto It = Indices.find(BB);
    assert(It != Indices.end() && "block not in CFGInfo");
    return It->second;
  }

  const std::vector<ir::BasicBlock *> &predecessors(
      const ir::BasicBlock *BB) const {
    return Preds[getIndex(BB)];
  }

  std::vector<ir::BasicBlock *> successors(const ir::BasicBlock *BB) const {
    return BB->successors();
  }

  /// Blocks in reverse post-order of a DFS from the entry. Unreachable
  /// blocks are appended after all reachable ones, in layout order.
  const std::vector<ir::BasicBlock *> &reversePostOrder() const {
    return RPO;
  }

  /// Position of \p BB within reversePostOrder().
  unsigned getRPOIndex(const ir::BasicBlock *BB) const {
    auto It = RPOIndices.find(BB);
    assert(It != RPOIndices.end() && "block not in RPO");
    return It->second;
  }

  bool isReachable(const ir::BasicBlock *BB) const {
    return Reachable.count(BB) != 0;
  }

private:
  const ir::Function &F;
  std::vector<ir::BasicBlock *> Order;
  std::unordered_map<const ir::BasicBlock *, unsigned> Indices;
  std::vector<std::vector<ir::BasicBlock *>> Preds;
  std::vector<ir::BasicBlock *> RPO;
  std::unordered_map<const ir::BasicBlock *, unsigned> RPOIndices;
  std::unordered_map<const ir::BasicBlock *, char> Reachable;
};

} // namespace analysis
} // namespace spice

#endif // SPICE_ANALYSIS_CFG_H
