//===- analysis/LoopInfo.cpp - Natural loop detection ---------------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

using namespace spice;
using namespace spice::analysis;
using namespace spice::ir;

BasicBlock *Loop::getPreheader(const CFGInfo &CFG) const {
  BasicBlock *Candidate = nullptr;
  for (BasicBlock *Pred : CFG.predecessors(Header)) {
    if (contains(Pred))
      continue;
    if (Candidate && Candidate != Pred)
      return nullptr;
    Candidate = Pred;
  }
  return Candidate;
}

std::vector<BasicBlock *> Loop::getExitBlocks(const CFGInfo &CFG) const {
  (void)CFG;
  std::vector<BasicBlock *> Exits;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ) &&
          std::find(Exits.begin(), Exits.end(), Succ) == Exits.end())
        Exits.push_back(Succ);
  return Exits;
}

std::vector<BasicBlock *> Loop::getExitingBlocks() const {
  std::vector<BasicBlock *> Exiting;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ)) {
        Exiting.push_back(BB);
        break;
      }
  return Exiting;
}

LoopInfo::LoopInfo(const CFGInfo &CFG, const DominatorTree &DT) {
  // Find back edges, grouped by header.
  std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> BackEdges;
  for (BasicBlock *BB : CFG.reversePostOrder()) {
    if (!CFG.isReachable(BB))
      continue;
    for (BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB))
        BackEdges[Succ].push_back(BB);
  }

  // Build each loop body: reverse reachability from the latches, stopping
  // at the header.
  for (auto &[Header, Latches] : BackEdges) {
    auto L = std::make_unique<Loop>(Header);
    L->Latches = Latches;
    L->BlockSet.insert(Header);
    L->Blocks.push_back(Header);
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (L->BlockSet.count(BB))
        continue;
      L->BlockSet.insert(BB);
      L->Blocks.push_back(BB);
      for (BasicBlock *Pred : CFG.predecessors(BB))
        if (CFG.isReachable(Pred))
          Work.push_back(Pred);
    }
    Loops.push_back(std::move(L));
  }

  // Sort loops by size so nesting resolution sees inner loops first; a loop
  // nests in the smallest strictly larger loop containing its header.
  std::sort(Loops.begin(), Loops.end(),
            [](const std::unique_ptr<Loop> &A, const std::unique_ptr<Loop> &B) {
              if (A->blocks().size() != B->blocks().size())
                return A->blocks().size() < B->blocks().size();
              // Tie-break deterministically by header RPO order.
              return A->getHeader()->getName() < B->getHeader()->getName();
            });
  for (size_t I = 0; I != Loops.size(); ++I) {
    for (size_t J = I + 1; J != Loops.size(); ++J) {
      if (Loops[J]->blocks().size() > Loops[I]->blocks().size() &&
          Loops[J]->contains(Loops[I]->getHeader())) {
        Loops[I]->Parent = Loops[J].get();
        Loops[J]->SubLoops.push_back(Loops[I].get());
        break;
      }
    }
  }

  // Innermost-loop map: smallest loop containing each block wins; loops are
  // already sorted by ascending size.
  for (const auto &L : Loops)
    for (BasicBlock *BB : L->blocks())
      if (!InnermostLoop.count(BB))
        InnermostLoop[BB] = L.get();
}

std::vector<Loop *> LoopInfo::topLevelLoops() const {
  std::vector<Loop *> Top;
  for (const auto &L : Loops)
    if (!L->getParent())
      Top.push_back(L.get());
  return Top;
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  auto It = InnermostLoop.find(BB);
  return It == InnermostLoop.end() ? nullptr : It->second;
}

Loop *LoopInfo::getLoopByHeader(const BasicBlock *Header) const {
  for (const auto &L : Loops)
    if (L->getHeader() == Header)
      return L.get();
  return nullptr;
}
