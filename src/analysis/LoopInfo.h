//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection from back edges (latch -> header where the header
/// dominates the latch), plus a loop-nest tree. The Spice transformation and
/// the value profiler both operate on Loop objects.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_ANALYSIS_LOOPINFO_H
#define SPICE_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace spice {
namespace analysis {

/// One natural loop: header, latches, member blocks, nest links.
class Loop {
public:
  Loop(ir::BasicBlock *Header) : Header(Header) {}

  ir::BasicBlock *getHeader() const { return Header; }

  /// Latch blocks (sources of back edges into the header).
  const std::vector<ir::BasicBlock *> &getLatches() const { return Latches; }

  /// The unique latch, or null when the loop has several.
  ir::BasicBlock *getSingleLatch() const {
    return Latches.size() == 1 ? Latches.front() : nullptr;
  }

  bool contains(const ir::BasicBlock *BB) const {
    return BlockSet.count(BB) != 0;
  }
  bool contains(const ir::Instruction *I) const {
    return contains(I->getParent());
  }
  bool contains(const Loop *Other) const {
    for (const Loop *L = Other; L; L = L->getParent())
      if (L == this)
        return true;
    return false;
  }

  const std::vector<ir::BasicBlock *> &blocks() const { return Blocks; }

  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }

  /// Nesting depth; 1 for outermost loops.
  unsigned getDepth() const {
    unsigned D = 0;
    for (const Loop *L = this; L; L = L->getParent())
      ++D;
    return D;
  }

  /// The unique predecessor of the header outside the loop, or null when
  /// there are several (no canonical preheader).
  ir::BasicBlock *getPreheader(const CFGInfo &CFG) const;

  /// Blocks outside the loop that are targets of edges leaving the loop.
  std::vector<ir::BasicBlock *> getExitBlocks(const CFGInfo &CFG) const;

  /// Blocks inside the loop with a successor outside it.
  std::vector<ir::BasicBlock *> getExitingBlocks() const;

private:
  friend class LoopInfo;

  ir::BasicBlock *Header;
  std::vector<ir::BasicBlock *> Latches;
  std::vector<ir::BasicBlock *> Blocks;
  std::unordered_set<const ir::BasicBlock *> BlockSet;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
};

/// All natural loops of a function, with nesting resolved.
class LoopInfo {
public:
  LoopInfo(const CFGInfo &CFG, const DominatorTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Outermost loops only.
  std::vector<Loop *> topLevelLoops() const;

  /// The innermost loop containing \p BB, or null.
  Loop *getLoopFor(const ir::BasicBlock *BB) const;

  /// The loop whose header is \p Header, or null.
  Loop *getLoopByHeader(const ir::BasicBlock *Header) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::unordered_map<const ir::BasicBlock *, Loop *> InnermostLoop;
};

} // namespace analysis
} // namespace spice

#endif // SPICE_ANALYSIS_LOOPINFO_H
