//===- analysis/LoopCarried.h - Loop-carried live-in analysis ---*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, for one loop, everything the Spice transformation (paper
/// Algorithm 1, lines 2-4) needs:
///
///   * the inter-iteration live-ins (SSA header phis),
///   * which of them are reduction candidates (sum/product/bitwise ops,
///     min/max through smin/smax or compare+select, and argmin/argmax
///     payload phis steered by the same compare),
///   * the speculated live-in set S = live-ins minus reductions,
///   * loop-invariant live-ins that must be communicated to worker threads,
///   * loop-defined values used after the loop (live-outs),
///   * a conservative DOALL classification used by the value profiler to
///     skip trivially parallel loops.
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_ANALYSIS_LOOPCARRIED_H
#define SPICE_ANALYSIS_LOOPCARRIED_H

#include "analysis/LoopInfo.h"

#include <cstdint>
#include <vector>

namespace spice {
namespace analysis {

/// Kinds of reductions the analysis recognizes. Payload kinds describe
/// argmin/argmax companions: a phi updated by a select sharing the compare
/// of a Min/Max reduction (e.g. `cm` tracking the clause whose weight is the
/// running minimum `wm` in the paper's otter loop).
enum class ReductionKind : uint8_t {
  Sum,
  Product,
  BitAnd,
  BitOr,
  BitXor,
  Min,
  Max,
  MinPayload,
  MaxPayload,
};

/// Returns the identity element for \p Kind (payloads have no meaningful
/// identity of their own; 0 is returned and the merge logic must consult the
/// primary reduction).
int64_t getReductionIdentity(ReductionKind Kind);

/// Returns a printable name for \p Kind.
const char *getReductionKindName(ReductionKind Kind);

/// One recognized reduction over a header phi.
struct ReductionInfo {
  ReductionKind Kind;
  /// The header phi carrying the accumulator.
  ir::Instruction *Phi = nullptr;
  /// Initial value (incoming from outside the loop).
  ir::Value *StartValue = nullptr;
  /// The in-loop update producing the latch incoming (binop or select).
  ir::Instruction *Update = nullptr;
  /// For payload kinds: the phi of the Min/Max reduction they accompany.
  ir::Instruction *PrimaryPhi = nullptr;
};

/// Everything Spice needs to know about one loop's dependences.
struct LoopCarriedInfo {
  const Loop *L = nullptr;

  /// All inter-iteration live-ins (header phis), in block order. For each,
  /// StartValues[i] is the incoming from outside and NextValues[i] the
  /// incoming along the (single) latch.
  std::vector<ir::Instruction *> HeaderPhis;
  std::vector<ir::Value *> StartValues;
  std::vector<ir::Value *> NextValues;

  /// Recognized reduction phis.
  std::vector<ReductionInfo> Reductions;

  /// S: live-ins requiring value speculation (HeaderPhis minus reductions).
  std::vector<ir::Instruction *> SpeculatedLiveIns;

  /// Values defined outside the loop but used inside (arguments and
  /// instructions; constants and globals excluded). Ordered by first use.
  std::vector<ir::Value *> InvariantLiveIns;

  /// Loop-defined values with uses outside the loop.
  std::vector<ir::Instruction *> LiveOuts;

  bool HasStores = false;
  bool HasLoads = false;

  /// Conservative: true when every phi is an induction or a reduction and
  /// the loop performs no stores (iterations then commute).
  bool IsDoall = false;

  /// Returns the ReductionInfo for \p Phi, or null.
  const ReductionInfo *getReductionFor(const ir::Instruction *Phi) const {
    for (const ReductionInfo &R : Reductions)
      if (R.Phi == Phi)
        return &R;
    return nullptr;
  }
};

/// Analyzes \p L. Requires a single-latch loop (asserts otherwise).
LoopCarriedInfo analyzeLoopCarried(const CFGInfo &CFG, const Loop &L);

} // namespace analysis
} // namespace spice

#endif // SPICE_ANALYSIS_LOOPCARRIED_H
