//===- analysis/Liveness.h - Backward liveness dataflow ---------*- C++ -*-===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward may-liveness over SSA values at block boundaries. The
/// value profiler's instrumenter uses it to size live-in record buffers, and
/// it provides an independent cross-check of the loop-carried analysis in
/// tests (every loop-carried live-in must be live into the loop header).
///
//===----------------------------------------------------------------------===//

#ifndef SPICE_ANALYSIS_LIVENESS_H
#define SPICE_ANALYSIS_LIVENESS_H

#include "analysis/CFG.h"

#include <unordered_set>
#include <vector>

namespace spice {
namespace analysis {

/// Per-block live-in/live-out sets of SSA values (instructions and
/// arguments; constants and globals are never "live").
class Liveness {
public:
  explicit Liveness(const CFGInfo &CFG);

  const std::unordered_set<const ir::Value *> &
  liveIn(const ir::BasicBlock *BB) const {
    return LiveIn[CFG.getIndex(BB)];
  }

  const std::unordered_set<const ir::Value *> &
  liveOut(const ir::BasicBlock *BB) const {
    return LiveOut[CFG.getIndex(BB)];
  }

  bool isLiveIn(const ir::Value *V, const ir::BasicBlock *BB) const {
    return liveIn(BB).count(V) != 0;
  }

private:
  const CFGInfo &CFG;
  std::vector<std::unordered_set<const ir::Value *>> LiveIn;
  std::vector<std::unordered_set<const ir::Value *>> LiveOut;
};

} // namespace analysis
} // namespace spice

#endif // SPICE_ANALYSIS_LIVENESS_H
