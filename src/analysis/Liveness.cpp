//===- analysis/Liveness.cpp - Backward liveness dataflow -----------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Standard iterate-to-fixpoint backward dataflow. Phi uses are attributed to
// the incoming edge: an operand of a phi in successor S coming from this
// block is live-out of this block but not live-in of S via the phi.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include <unordered_set>
#include <utility>
#include <vector>

using namespace spice;
using namespace spice::analysis;
using namespace spice::ir;

static bool isTrackable(const Value *V) {
  return isa<Instruction>(V) || isa<Argument>(V);
}

Liveness::Liveness(const CFGInfo &CFG) : CFG(CFG) {
  unsigned N = CFG.getNumBlocks();
  LiveIn.resize(N);
  LiveOut.resize(N);

  // Per-block upward-exposed uses (Gen) and definitions (Def). Phi operands
  // are charged to predecessor edges, handled in the flow step below.
  std::vector<std::unordered_set<const Value *>> Gen(N), Def(N);
  const Function &F = CFG.getFunction();
  for (const auto &BB : F) {
    unsigned Idx = CFG.getIndex(BB.get());
    for (const auto &I : *BB) {
      if (I->getOpcode() != Opcode::Phi)
        for (const Value *Op : I->operands())
          if (isTrackable(Op) && !Def[Idx].count(Op))
            Gen[Idx].insert(Op);
      if (I->producesValue())
        Def[Idx].insert(I.get());
    }
  }

  // live-out(B) = union over successors S of
  //                 (live-in(S) - phis(S)) + phi-incomings(S via B)
  // live-in(B)  = Gen(B) + (live-out(B) - Def(B)), phi results live-in.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    const std::vector<BasicBlock *> &RPO = CFG.reversePostOrder();
    for (auto It = RPO.rbegin(), E = RPO.rend(); It != E; ++It) {
      BasicBlock *BB = *It;
      unsigned Idx = CFG.getIndex(BB);
      std::unordered_set<const Value *> Out;
      for (BasicBlock *Succ : BB->successors()) {
        unsigned SIdx = CFG.getIndex(Succ);
        for (const Value *V : LiveIn[SIdx]) {
          const auto *VI = dyn_cast<Instruction>(V);
          bool IsSuccPhi = VI && VI->getOpcode() == Opcode::Phi &&
                           VI->getParent() == Succ;
          if (!IsSuccPhi)
            Out.insert(V);
        }
        Succ->forEachPhi([&](Instruction *Phi) {
          if (Value *In = Phi->getPhiIncomingFor(BB))
            if (isTrackable(In))
              Out.insert(In);
        });
      }
      std::unordered_set<const Value *> In = Gen[Idx];
      for (const Value *V : Out)
        if (!Def[Idx].count(V))
          In.insert(V);
      // Phi results are defined "at the top": they are live-in so that
      // predecessors see them live across the edge only via incomings, but
      // the phi itself must be treated as live-in if used below... it is a
      // Def, so exclude. Phis contribute liveness via their uses (Gen).
      if (Out != LiveOut[Idx] || In != LiveIn[Idx]) {
        LiveOut[Idx] = std::move(Out);
        LiveIn[Idx] = std::move(In);
        Changed = true;
      }
    }
  }
}
