//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Implements the iterative dominator algorithm of Cooper, Harvey and
// Kennedy, "A Simple, Fast Dominance Algorithm" (2001). Intersection walks
// RPO indices upward until the fingers meet.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

using namespace spice;
using namespace spice::analysis;
using namespace spice::ir;

DominatorTree::DominatorTree(const CFGInfo &CFG) : CFG(CFG) {
  const std::vector<BasicBlock *> &RPO = CFG.reversePostOrder();
  IDom.assign(RPO.size(), -1);
  if (RPO.empty())
    return;

  auto Intersect = [this](int A, int B) {
    while (A != B) {
      while (A > B)
        A = IDom[static_cast<size_t>(A)];
      while (B > A)
        B = IDom[static_cast<size_t>(B)];
    }
    return A;
  };

  IDom[0] = 0; // Entry is its own idom (normalized to null in the getter).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1, E = static_cast<unsigned>(RPO.size()); I != E; ++I) {
      BasicBlock *BB = RPO[I];
      if (!CFG.isReachable(BB))
        continue;
      int NewIDom = -1;
      for (BasicBlock *Pred : CFG.predecessors(BB)) {
        if (!CFG.isReachable(Pred))
          continue;
        int PredIdx = static_cast<int>(CFG.getRPOIndex(Pred));
        if (IDom[static_cast<size_t>(PredIdx)] < 0)
          continue; // Not yet processed.
        NewIDom = NewIDom < 0 ? PredIdx : Intersect(NewIDom, PredIdx);
      }
      if (NewIDom >= 0 && IDom[I] != NewIDom) {
        IDom[I] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  if (!CFG.isReachable(BB))
    return nullptr;
  unsigned I = CFG.getRPOIndex(BB);
  if (I == 0 || IDom[I] < 0)
    return nullptr;
  return CFG.reversePostOrder()[static_cast<size_t>(IDom[I])];
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (A == B)
    return true;
  if (!CFG.isReachable(A) || !CFG.isReachable(B))
    return false;
  unsigned Target = CFG.getRPOIndex(A);
  int Cur = static_cast<int>(CFG.getRPOIndex(B));
  // Walk up the idom chain; RPO indices strictly decrease along it.
  while (Cur > static_cast<int>(Target))
    Cur = IDom[static_cast<size_t>(Cur)];
  return Cur == static_cast<int>(Target);
}

bool DominatorTree::dominatesUse(const Instruction *Def,
                                 const Instruction *User,
                                 unsigned OperandIdx) const {
  const BasicBlock *DefBB = Def->getParent();
  const BasicBlock *UseBB = User->getParent();
  if (User->getOpcode() == Opcode::Phi) {
    // A phi uses its operand at the end of the incoming block.
    const BasicBlock *Incoming = User->getBlockOperand(OperandIdx);
    return dominates(DefBB, Incoming);
  }
  if (DefBB != UseBB)
    return dominates(DefBB, UseBB);
  // Same block: definition must appear strictly earlier.
  for (const auto &I : *DefBB) {
    if (I.get() == Def)
      return true;
    if (I.get() == User)
      return false;
  }
  return false;
}

bool analysis::verifySSADominance(const Function &F, const DominatorTree &DT,
                                  std::vector<std::string> *Errors) {
  bool Ok = true;
  auto Fail = [&](const std::string &Msg) {
    Ok = false;
    if (Errors)
      Errors->push_back("@" + F.getName() + ": " + Msg);
  };
  for (const auto &BB : F) {
    if (!DT.getCFG().isReachable(BB.get()))
      continue;
    for (const auto &Inst : *BB) {
      for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
        const auto *DefInst = dyn_cast<Instruction>(Inst->getOperand(I));
        if (!DefInst)
          continue; // Constants, arguments and globals dominate everything.
        if (!DT.dominatesUse(DefInst, Inst.get(), I))
          Fail("use of value not dominated by its definition in block " +
               BB->getName());
      }
    }
  }
  return Ok;
}
