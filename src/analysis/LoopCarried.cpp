//===- analysis/LoopCarried.cpp - Loop-carried live-in analysis -----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopCarried.h"

#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace spice;
using namespace spice::analysis;
using namespace spice::ir;

int64_t analysis::getReductionIdentity(ReductionKind Kind) {
  switch (Kind) {
  case ReductionKind::Sum:
    return 0;
  case ReductionKind::Product:
    return 1;
  case ReductionKind::BitAnd:
    return -1;
  case ReductionKind::BitOr:
    return 0;
  case ReductionKind::BitXor:
    return 0;
  case ReductionKind::Min:
    return INT64_MAX;
  case ReductionKind::Max:
    return INT64_MIN;
  case ReductionKind::MinPayload:
  case ReductionKind::MaxPayload:
    return 0;
  }
  spice_unreachable("unhandled reduction kind");
}

const char *analysis::getReductionKindName(ReductionKind Kind) {
  switch (Kind) {
  case ReductionKind::Sum:
    return "sum";
  case ReductionKind::Product:
    return "product";
  case ReductionKind::BitAnd:
    return "and";
  case ReductionKind::BitOr:
    return "or";
  case ReductionKind::BitXor:
    return "xor";
  case ReductionKind::Min:
    return "min";
  case ReductionKind::Max:
    return "max";
  case ReductionKind::MinPayload:
    return "min-payload";
  case ReductionKind::MaxPayload:
    return "max-payload";
  }
  spice_unreachable("unhandled reduction kind");
}

namespace {

/// Per-loop use index: for every value, the in-loop instructions using it.
class LoopUses {
public:
  explicit LoopUses(const Loop &L) {
    for (BasicBlock *BB : L.blocks())
      for (const auto &I : *BB)
        for (Value *Op : I->operands())
          Uses[Op].push_back(I.get());
  }

  /// In-loop users of \p V (empty when unused inside the loop).
  const std::vector<Instruction *> &usersOf(const Value *V) const {
    static const std::vector<Instruction *> Empty;
    auto It = Uses.find(V);
    return It == Uses.end() ? Empty : It->second;
  }

  /// True when the in-loop users of \p V form a subset of \p Allowed.
  bool usedOnlyBy(const Value *V,
                  std::initializer_list<const Instruction *> Allowed) const {
    for (const Instruction *U : usersOf(V)) {
      bool Found = false;
      for (const Instruction *A : Allowed)
        Found |= (U == A);
      if (!Found)
        return false;
    }
    return true;
  }

private:
  std::unordered_map<const Value *, std::vector<Instruction *>> Uses;
};

/// Pattern matcher for reductions over one header phi.
class ReductionMatcher {
public:
  ReductionMatcher(const Loop &L, const LoopUses &Uses) : L(L), Uses(Uses) {}

  /// Tries to classify the update of \p Phi (latch incoming \p Next) as a
  /// simple associative reduction or a compare+select min/max. Payload
  /// phis are matched separately (they need the set of recognized selects).
  bool matchSimple(Instruction *Phi, Value *Next, ReductionInfo &Out) {
    auto *Update = dyn_cast<Instruction>(Next);
    if (!Update || !L.contains(Update))
      return false;
    if (matchBinary(Phi, Update, Out))
      return true;
    return matchMinMaxSelect(Phi, Update, Out);
  }

  /// Matches `Phi` updated by select(SharedCond, ...) where SharedCond also
  /// drives the recognized min/max reduction \p Primary.
  bool matchPayload(Instruction *Phi, Value *Next,
                    const ReductionInfo &Primary, ReductionInfo &Out) {
    if (Primary.Kind != ReductionKind::Min &&
        Primary.Kind != ReductionKind::Max)
      return false;
    auto *Update = dyn_cast<Instruction>(Next);
    if (!Update || !L.contains(Update) ||
        Update->getOpcode() != Opcode::Select)
      return false;
    const Instruction *PrimarySel = Primary.Update;
    assert(PrimarySel->getOpcode() == Opcode::Select &&
           "min/max primary must be a select to steer a payload");
    if (Update->getOperand(0) != PrimarySel->getOperand(0))
      return false;
    // The payload must keep its old value exactly when the primary keeps
    // its accumulator: the "old" slots must line up.
    unsigned PrimaryKeepSlot =
        PrimarySel->getOperand(1) == Primary.Phi ? 1 : 2;
    if (PrimarySel->getOperand(PrimaryKeepSlot) != Primary.Phi)
      return false;
    if (Update->getOperand(PrimaryKeepSlot) != Phi)
      return false;
    // The phi must feed nothing else in the loop.
    if (!Uses.usedOnlyBy(Phi, {Update}))
      return false;
    Out.Kind = Primary.Kind == ReductionKind::Min ? ReductionKind::MinPayload
                                                  : ReductionKind::MaxPayload;
    Out.Phi = Phi;
    Out.Update = Update;
    Out.PrimaryPhi = Primary.Phi;
    return true;
  }

private:
  bool matchBinary(Instruction *Phi, Instruction *Update,
                   ReductionInfo &Out) {
    ReductionKind Kind;
    switch (Update->getOpcode()) {
    case Opcode::Add:
      Kind = ReductionKind::Sum;
      break;
    case Opcode::Mul:
      Kind = ReductionKind::Product;
      break;
    case Opcode::And:
      Kind = ReductionKind::BitAnd;
      break;
    case Opcode::Or:
      Kind = ReductionKind::BitOr;
      break;
    case Opcode::Xor:
      Kind = ReductionKind::BitXor;
      break;
    case Opcode::SMin:
      Kind = ReductionKind::Min;
      break;
    case Opcode::SMax:
      Kind = ReductionKind::Max;
      break;
    default:
      return false;
    }
    if (Update->getOperand(0) != Phi && Update->getOperand(1) != Phi)
      return false;
    // The accumulator must flow only through the update, and the update
    // only back into the phi (either may additionally be live-out; uses
    // outside the loop are not indexed by LoopUses and thus allowed).
    if (!Uses.usedOnlyBy(Phi, {Update}) || !Uses.usedOnlyBy(Update, {Phi}))
      return false;
    Out.Kind = Kind;
    Out.Phi = Phi;
    Out.Update = Update;
    return true;
  }

  bool matchMinMaxSelect(Instruction *Phi, Instruction *Update,
                         ReductionInfo &Out) {
    if (Update->getOpcode() != Opcode::Select)
      return false;
    auto *Cond = dyn_cast<Instruction>(Update->getOperand(0));
    if (!Cond || !L.contains(Cond) || !Cond->isComparison())
      return false;

    Value *TrueV = Update->getOperand(1);
    Value *FalseV = Update->getOperand(2);
    if (TrueV != Phi && FalseV != Phi)
      return false;
    Value *Candidate = TrueV == Phi ? FalseV : TrueV;

    // Normalize the predicate to "Lhs less-than Rhs".
    Value *Lhs = Cond->getOperand(0);
    Value *Rhs = Cond->getOperand(1);
    bool LessLike;
    switch (Cond->getOpcode()) {
    case Opcode::ICmpSLt:
    case Opcode::ICmpSLe:
      LessLike = true;
      break;
    case Opcode::ICmpSGt:
    case Opcode::ICmpSGe:
      LessLike = false;
      break;
    default:
      return false;
    }
    if (!LessLike)
      std::swap(Lhs, Rhs);
    // Now the condition reads "Lhs < Rhs" (possibly non-strict).
    if (!((Lhs == Candidate && Rhs == Phi) ||
          (Lhs == Phi && Rhs == Candidate)))
      return false;

    // select(cand < phi, cand, phi) = min; select(cand < phi, phi, cand)
    // = max, and symmetrically with swapped compare operands.
    bool CandWhenTrue = TrueV == Candidate;
    bool CandIsLhs = Lhs == Candidate;
    bool IsMin = CandWhenTrue == CandIsLhs;

    // The accumulator may feed only the compare and the select.
    if (!Uses.usedOnlyBy(Phi, {Cond, Update}) ||
        !Uses.usedOnlyBy(Update, {Phi}))
      return false;

    Out.Kind = IsMin ? ReductionKind::Min : ReductionKind::Max;
    Out.Phi = Phi;
    Out.Update = Update;
    return true;
  }

  const Loop &L;
  const LoopUses &Uses;
};

} // namespace

/// True when the phi is a basic induction: latch value = phi +/- invariant.
static bool isInduction(const Loop &L, const Instruction *Phi,
                        const Value *Next) {
  const auto *Update = dyn_cast<Instruction>(Next);
  if (!Update || !L.contains(Update))
    return false;
  if (Update->getOpcode() != Opcode::Add &&
      Update->getOpcode() != Opcode::Sub)
    return false;
  const Value *Other = nullptr;
  if (Update->getOperand(0) == Phi)
    Other = Update->getOperand(1);
  else if (Update->getOperand(1) == Phi &&
           Update->getOpcode() == Opcode::Add)
    Other = Update->getOperand(0);
  else
    return false;
  // The step must be loop-invariant.
  const auto *StepInst = dyn_cast<Instruction>(Other);
  return !StepInst || !L.contains(StepInst);
}

LoopCarriedInfo analysis::analyzeLoopCarried(const CFGInfo &CFG,
                                             const Loop &L) {
  LoopCarriedInfo Info;
  Info.L = &L;

  BasicBlock *Latch = L.getSingleLatch();
  assert(Latch && "loop-carried analysis requires a single latch");
  BasicBlock *Header = L.getHeader();

  // Collect header phis and split their incomings into start (from outside)
  // and next (from the latch).
  Header->forEachPhi([&](Instruction *Phi) {
    Value *Start = nullptr;
    Value *Next = nullptr;
    for (unsigned I = 0, E = Phi->getNumOperands(); I != E; ++I) {
      if (Phi->getBlockOperand(I) == Latch)
        Next = Phi->getOperand(I);
      else
        Start = Phi->getOperand(I);
    }
    assert(Start && Next && "header phi missing an incoming");
    Info.HeaderPhis.push_back(Phi);
    Info.StartValues.push_back(Start);
    Info.NextValues.push_back(Next);
  });

  LoopUses Uses(L);
  ReductionMatcher Matcher(L, Uses);

  // First pass: simple reductions.
  std::vector<bool> IsReduction(Info.HeaderPhis.size(), false);
  for (size_t I = 0; I != Info.HeaderPhis.size(); ++I) {
    ReductionInfo R;
    if (Matcher.matchSimple(Info.HeaderPhis[I], Info.NextValues[I], R)) {
      R.StartValue = Info.StartValues[I];
      Info.Reductions.push_back(R);
      IsReduction[I] = true;
    }
  }
  // Second pass: payload phis steered by an already-recognized min/max.
  for (size_t I = 0; I != Info.HeaderPhis.size(); ++I) {
    if (IsReduction[I])
      continue;
    for (const ReductionInfo &Primary : Info.Reductions) {
      ReductionInfo R;
      if (Primary.PrimaryPhi == nullptr && // Primaries only, not payloads.
          Matcher.matchPayload(Info.HeaderPhis[I], Info.NextValues[I],
                               Primary, R)) {
        R.StartValue = Info.StartValues[I];
        Info.Reductions.push_back(R);
        IsReduction[I] = true;
        break;
      }
    }
  }

  // S = live-ins minus reductions (paper Algorithm 1, line 4).
  for (size_t I = 0; I != Info.HeaderPhis.size(); ++I)
    if (!IsReduction[I])
      Info.SpeculatedLiveIns.push_back(Info.HeaderPhis[I]);

  // Invariant live-ins, loads/stores, and live-outs. The analyzed loop's
  // own header phis are skipped: their outside incomings are "used" on the
  // entry edge (they are the phi start values, communicated separately),
  // and their latch incomings are loop-defined.
  std::unordered_set<const Value *> SeenInvariant;
  for (BasicBlock *BB : L.blocks()) {
    for (const auto &I : *BB) {
      if (BB == Header && I->getOpcode() == Opcode::Phi)
        continue;
      Info.HasLoads |= I->getOpcode() == Opcode::Load;
      Info.HasStores |= I->getOpcode() == Opcode::Store;
      for (Value *Op : I->operands()) {
        if (isa<ConstantInt>(Op) || isa<GlobalVariable>(Op))
          continue;
        bool DefinedOutside = false;
        if (isa<Argument>(Op))
          DefinedOutside = true;
        else if (auto *OpInst = dyn_cast<Instruction>(Op))
          DefinedOutside = !L.contains(OpInst);
        if (DefinedOutside && SeenInvariant.insert(Op).second)
          Info.InvariantLiveIns.push_back(Op);
      }
    }
  }
  const Function &F = CFG.getFunction();
  for (const auto &BB : F) {
    if (L.contains(BB.get()))
      continue;
    for (const auto &I : *BB)
      for (Value *Op : I->operands()) {
        auto *Def = dyn_cast<Instruction>(Op);
        if (!Def || !L.contains(Def))
          continue;
        if (std::find(Info.LiveOuts.begin(), Info.LiveOuts.end(), Def) ==
            Info.LiveOuts.end())
          Info.LiveOuts.push_back(Def);
      }
  }

  // DOALL: every phi is an induction or reduction and nothing is stored.
  Info.IsDoall = !Info.HasStores;
  for (size_t I = 0; I != Info.HeaderPhis.size() && Info.IsDoall; ++I)
    if (!IsReduction[I] &&
        !isInduction(L, Info.HeaderPhis[I], Info.NextValues[I]))
      Info.IsDoall = false;
  return Info;
}
