#!/usr/bin/env bash
# Verifies every header under src/ compiles standalone (self-contained
# includes). Run from the repo root; used by the header-hygiene CI job.
set -u
cd "$(dirname "$0")/.."

CXX=${CXX:-g++}
tmpbase=$(mktemp "${TMPDIR:-/tmp}/hdrcheck.XXXXXX")
tmp="$tmpbase.cpp"
err="$tmpbase.err"
trap 'rm -f "$tmpbase" "$tmp" "$err"' EXIT

fail=0
while IFS= read -r hdr; do
  printf '#include "%s"\n' "${hdr#src/}" > "$tmp"
  if ! "$CXX" -std=c++20 -Isrc -fsyntax-only "$tmp" 2>"$err"; then
    echo "not self-contained: $hdr"
    sed 's/^/    /' "$err" | head -10
    fail=1
  fi
done < <(find src -name '*.h' | sort)

if [ "$fail" -ne 0 ]; then
  echo "header self-containment check FAILED"
  exit 1
fi
echo "all headers self-contained"
