#!/usr/bin/env python3
"""Compare BENCH_*.json perf artifacts against a baseline from main.

The bench CI job emits one flat BENCH_<name>.json per benchmark (see
bench/BenchUtil.h). On main, the job caches those files as the baseline;
on pull requests this script diffs the PR's artifacts against that
baseline and FAILS (exit 1) when a gated metric regresses by more than
--threshold (default 10%). The gated metrics are the simulated Figure 7
speedup geomeans (higher is better), the deterministic load-imbalance
sweep of bench_ablation_loadbalance (lower is better), and the serving
throughput of bench_serve (higher is better); everything else is
reported informationally so perf drift stays visible in the job log.

A gated key the baseline emits but the current run does not is a hard
failure: a regressing PR must not be able to disable its own gate by
renaming or dropping the key.

Usage:
  scripts/compare_bench.py --current build --baseline bench-baseline
  scripts/compare_bench.py --current build --baseline bench-baseline \
      --gate fig7_speedup:sim_geomean_4t --threshold 0.10

A missing baseline directory or file is not an error (first run, expired
cache): the script prints a notice and exits 0.
"""

import argparse
import json
import math
import os
import sys

# Metrics that gate the job: (file stem, key, higher_is_better). The
# simulated Figure 7 geomeans are the repo's headline number (ROADMAP:
# regression gate on the simulated Figure 7 geomean); the
# load-imbalance sweep is deterministic (static hotspot workload,
# re-priced from the runtime's own chunk boundaries), so a >threshold
# increase means the planner or the work-stealing schedule regressed.
# serve_throughput_rps is the serving layer's headline number (mixed
# packet + SSSP request stream through one runtime; see docs/serving.md
# and bench/serve.cpp). The adaptive-chunking gates guard the PR's
# headline claim (docs/tuning.md): the adaptive controller's six-kernel
# suite geomean over the best single static k must not regress, and the
# adaptive runs' mean recovery fraction must not grow (the controller
# steering into re-execution-heavy granularities would show up here
# before it costs the geomean). jit_vs_interp_throughput guards the JIT
# tier's headline claim (docs/jit.md): the compiled loop body must stay
# well ahead of the vm interpreter on the same workload. The
# submit-round-trip gates (lower is better) guard the scheduler/buffer
# hot path now that it has been attacked directly: the solo and
# contended submit().get() medians from bench_micro_runtime must not
# creep back up as per-submit allocations sneak in. The topology gates
# (docs/topology.md) guard the NUMA-aware placement layer:
# steal_local_fraction is the share of worker steals that stayed on the
# victim's node on the fake 2-node contention run (the bench itself
# hard-fails below 0.9), and contention_geomean is the cross-policy
# contention speedup geomean -- the locality machinery must not slow
# the topology-off scheduler paths down.
DEFAULT_GATES = [
    ("fig7_speedup", "sim_geomean_2t", True),
    ("fig7_speedup", "sim_geomean_4t", True),
    ("fig7_speedup", "jit_vs_interp_throughput", True),
    ("fig7_speedup", "steal_local_fraction", True),
    ("fig7_speedup", "contention_geomean", True),
    ("ablation_loadbalance", "load_imbalance_k1", False),
    ("ablation_loadbalance", "load_imbalance_k2", False),
    ("ablation_loadbalance", "load_imbalance_k4", False),
    ("ablation_loadbalance", "load_imbalance_k8", False),
    ("ablation_loadbalance", "adaptive_vs_best_static_geomean", True),
    ("ablation_loadbalance", "adaptive_recovery_fraction", False),
    ("serve", "serve_throughput_rps", True),
    ("micro_runtime", "submit_roundtrip_ns", False),
    ("micro_runtime", "contended_submit_roundtrip_ns", False),
]


def load_bench_files(directory):
    """Returns {stem: parsed json} for every BENCH_*.json in directory."""
    out = {}
    if not os.path.isdir(directory):
        return out
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        stem = name[len("BENCH_"):-len(".json")]
        path = os.path.join(directory, name)
        try:
            with open(path) as f:
                out[stem] = json.load(f)
        except (OSError, ValueError) as e:
            print(f"warning: cannot parse {path}: {e}", file=sys.stderr)
    return out


def numeric_keys(doc):
    return {
        k: float(v)
        for k, v in doc.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def parse_gate(spec):
    """Parses 'stem:key' or 'stem:key:lower-is-better' gate specs."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"gate '{spec}' is not of the form stem:key[:lower-is-better]")
    higher = True
    if len(parts) == 3:
        if parts[2] != "lower-is-better":
            raise argparse.ArgumentTypeError(
                f"gate '{spec}': third field must be 'lower-is-better'")
        higher = False
    return (parts[0], parts[1], higher)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True,
                    help="directory with this run's BENCH_*.json")
    ap.add_argument("--baseline", required=True,
                    help="directory with the baseline BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="maximum tolerated relative regression on gated "
                         "metrics (default 0.10 = 10%%)")
    ap.add_argument("--gate", action="append", type=parse_gate, default=[],
                    metavar="STEM:KEY[:lower-is-better]",
                    help="extra gated metric; repeatable. Default gates: "
                         "the simulated Figure 7 speedup geomeans")
    args = ap.parse_args()

    current = load_bench_files(args.current)
    baseline = load_bench_files(args.baseline)
    if not current:
        print(f"error: no BENCH_*.json found in {args.current}",
              file=sys.stderr)
        return 1
    if not baseline:
        print(f"notice: no baseline BENCH_*.json in {args.baseline}; "
              "skipping comparison (first run or expired cache)")
        return 0

    # Informational diff of every shared numeric metric.
    print(f"{'metric':50s} {'baseline':>12s} {'current':>12s} {'delta':>9s}")
    print("-" * 86)
    for stem in sorted(set(current) & set(baseline)):
        cur, base = numeric_keys(current[stem]), numeric_keys(baseline[stem])
        for key in sorted(set(cur) & set(base)):
            b, c = base[key], cur[key]
            delta = (c - b) / abs(b) if b else float("inf") if c else 0.0
            print(f"{stem + ':' + key:50s} {b:12.4g} {c:12.4g} "
                  f"{delta:+8.1%}")

    gates = DEFAULT_GATES + args.gate
    failures = []
    print()
    for stem, key, higher_is_better in gates:
        # Missing on the baseline side is legitimate (first run, expired
        # cache, metric added by this PR): skip. Missing on the CURRENT
        # side while the baseline has it means this PR stopped emitting a
        # gated headline metric -- that must fail, or a regressing PR
        # could disable its own gate by renaming the key.
        base = numeric_keys(baseline[stem]).get(key) \
            if stem in baseline else None
        cur = numeric_keys(current[stem]).get(key) \
            if stem in current else None
        if base is None or base == 0 or math.isnan(base):
            print(f"gate {stem}:{key}: no baseline value; skipped")
            continue
        if cur is None:
            print(f"gate {stem}:{key}: baseline has it but the current "
                  "run does not emit it ... FAIL")
            failures.append((stem, key, float("inf")))
            continue
        if math.isnan(cur):
            # NaN compares false against every threshold, so without
            # this check a gated metric could regress to NaN and pass
            # silently. A NaN current value is as bad as a missing one.
            print(f"gate {stem}:{key}: current value is NaN ... FAIL")
            failures.append((stem, key, float("inf")))
            continue
        regression = (base - cur) / base if higher_is_better \
            else (cur - base) / base
        status = "FAIL" if regression > args.threshold else "ok"
        print(f"gate {stem}:{key}: baseline {base:.4g}, current {cur:.4g}, "
              f"regression {regression:+.1%} (threshold "
              f"{args.threshold:.0%}) ... {status}")
        if regression > args.threshold:
            failures.append((stem, key, regression))

    if failures:
        names = ", ".join(f"{s}:{k} ({r:+.1%})" for s, k, r in failures)
        print(f"\nFAIL: perf regression beyond threshold: {names}",
              file=sys.stderr)
        return 1
    print("\nAll gated metrics within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
