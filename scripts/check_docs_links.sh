#!/usr/bin/env bash
# Documentation hygiene, used by the CI docs job:
#  1. every relative markdown link in docs/*.md, README.md and
#     bench/README.md resolves to an existing file (anchors stripped);
#  2. every workload header (src/workloads/*.h) is mentioned in
#     docs/workloads.md, so the workload matrix cannot silently go
#     stale when a workload is added;
#  3. every core header (src/core/*.h) is mentioned somewhere under
#     docs/, so a new core subsystem cannot land undocumented;
#  4. every JIT header (src/jit/*.h) is mentioned somewhere under
#     docs/, for the same reason (docs/jit.md is the map);
#  5. every topology header (src/topology/*.h) is mentioned somewhere
#     under docs/ (docs/topology.md is the operator guide).
set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative links resolve ---------------------------------------------
for doc in docs/*.md README.md bench/README.md; do
  [ -f "$doc" ] || continue
  docdir=$(dirname "$doc")
  # Markdown inline links: [text](target). External and intra-page
  # links are skipped; targets are resolved relative to the document.
  # Fenced code blocks are stripped first (a C++ lambda is not a link).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$docdir/$path" ]; then
      echo "broken link in $doc: $target"
      fail=1
    fi
  done < <(awk '/^```/ { inblock = !inblock; next } !inblock' "$doc" |
           grep -o '\[[^]]*\]([^)]*)' | sed 's/.*(\(.*\))/\1/')
done

# --- 2. every workload header is documented --------------------------------
for hdr in src/workloads/*.h; do
  base=$(basename "$hdr")
  if ! grep -q "$base" docs/workloads.md; then
    echo "src/workloads/$base is not mentioned in docs/workloads.md"
    fail=1
  fi
done

# --- 3. every core header is documented ------------------------------------
for hdr in src/core/*.h; do
  base=$(basename "$hdr")
  if ! grep -rq "$base" docs/; then
    echo "src/core/$base is not referenced anywhere in docs/"
    fail=1
  fi
done

# --- 4. every JIT header is documented --------------------------------------
for hdr in src/jit/*.h; do
  base=$(basename "$hdr")
  if ! grep -rq "$base" docs/; then
    echo "src/jit/$base is not referenced anywhere in docs/"
    fail=1
  fi
done

# --- 5. every topology header is documented ----------------------------------
for hdr in src/topology/*.h; do
  base=$(basename "$hdr")
  if ! grep -rq "$base" docs/; then
    echo "src/topology/$base is not referenced anywhere in docs/"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs links resolve; all workload, core, jit and topology headers documented"
