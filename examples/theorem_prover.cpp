//===- examples/theorem_prover.cpp - The paper's otter scenario -----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's running example (Figure 1): a theorem prover repeatedly
// selects the lightest clause from its set-of-support, removes it, and
// inserts newly derived clauses. The selection loop is Spice-parallelized;
// the churn between invocations is exactly what the re-memoizing value
// predictor absorbs. The loop registers on a SpiceRuntime -- the
// process-wide worker pool a real prover would share across all its
// parallelized loops.
//
//===----------------------------------------------------------------------===//

#include "core/SpiceLoop.h"
#include "core/SpiceRuntime.h"
#include "workloads/Otter.h"

#include <cstdio>

using namespace spice::core;
using namespace spice::workloads;

int main() {
  ClauseList SetOfSupport(5000, /*Seed=*/2026);
  SpiceRuntime Runtime(/*NumThreads=*/4);
  OtterTraits Traits;
  auto Selection = Runtime.makeLoop(Traits);

  std::printf("proving... (each round: select lightest of %zu clauses, "
              "derive 3 new ones)\n\n",
              SetOfSupport.size());
  long TotalSelectedWeight = 0;
  for (int Round = 0; Round != 400 && SetOfSupport.head(); ++Round) {
    OtterTraits::State Picked = Selection.invoke(SetOfSupport.head());
    // Sanity: the speculative result must equal the sequential oracle.
    Clause *Oracle = SetOfSupport.findLightestReference();
    if (Picked.MinClause != Oracle) {
      std::printf("MISMATCH at round %d!\n", Round);
      return 1;
    }
    TotalSelectedWeight += Picked.MinWeight;
    SetOfSupport.mutate(Picked.MinClause, /*Inserts=*/3);
  }

  const SpiceStats &S = Selection.stats();
  std::printf("rounds:                    %lu\n",
              (unsigned long)S.Invocations);
  std::printf("checksum (sum of minima):  %ld\n", TotalSelectedWeight);
  std::printf("mis-speculation rate:      %.2f%%\n",
              100.0 * S.misspeculationRate());
  std::printf("squashed threads:          %lu\n",
              (unsigned long)S.SquashedThreads);
  std::printf("wasted iterations:         %lu of %lu\n",
              (unsigned long)S.WastedIterations,
              (unsigned long)S.TotalIterations);
  std::printf("load imbalance:            %.3f (1.0 = perfect)\n",
              S.loadImbalance());
  std::printf("\nEvery round's speculative selection matched the "
              "sequential oracle.\n");
  return 0;
}
