//===- examples/graph_sssp.cpp - Speculative frontier relaxation ----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The graph-analytics workload family end to end: single-source shortest
// paths as a sequence of frontier waves, each wave one speculative loop
// invocation on a shared SpiceRuntime. Distance reads and writes go
// through the SpecSpace, so two frontier vertices relaxing a common
// neighbor are caught by commit-time value validation -- conflicts are
// real but sparse, and their density depends on the graph shape (try
// swapping the R-MAT generator for CsrGraph::grid).
//
//===----------------------------------------------------------------------===//

#include "core/SpiceRuntime.h"
#include "workloads/Graph.h"

#include <cstdio>

using namespace spice::core;
using namespace spice::workloads;

int main() {
  SpiceRuntime Runtime(/*NumThreads=*/4);
  SsspWorkload Sssp(CsrGraph::rmat(/*NumVertices=*/4096,
                                   /*EdgesPerVertex=*/8, /*Seed=*/42),
                    /*Source=*/0);
  LoopOptions Opts;
  Opts.ChunksPerThread = 2; // Oversubscribe: frontier sizes are skewed.
  SsspWorkload::Loop Relax = Sssp.makeLoop(Runtime, Opts);

  std::printf("speculative SSSP over an R-MAT graph (%zu vertices, %zu "
              "edges)\n\n",
              Sssp.graph().numVertices(), Sssp.graph().numEdges());

  size_t Waves = 0;
  while (!Sssp.done()) {
    size_t Frontier = Sssp.frontierSize();
    RelaxState Wave = Sssp.runWave(Relax);
    if (Waves < 8)
      std::printf("wave %2zu: frontier %5zu, relaxations %6lu\n", Waves,
                  Frontier, (unsigned long)Wave.Relaxations);
    ++Waves;
  }

  size_t Reached = 0;
  for (int64_t D : Sssp.distances())
    Reached += D != SsspWorkload::unreached();
  bool Correct = Sssp.distances() ==
                 SsspWorkload::ssspReference(Sssp.graph(), /*Source=*/0);

  const SpiceStats &S = Relax.stats();
  std::printf("\nwaves:                 %zu\n", Waves);
  std::printf("vertices reached:      %zu\n", Reached);
  std::printf("invocations:           %lu (%lu ran sequentially)\n",
              (unsigned long)S.Invocations,
              (unsigned long)S.SequentialInvocations);
  std::printf("mis-speculated:        %lu (frontier churn + distance "
              "conflicts)\n",
              (unsigned long)S.MisspeculatedInvocations);
  std::printf("conflict squashes:     %lu\n",
              (unsigned long)S.ConflictSquashes);
  std::printf("matches oracle:        %s\n", Correct ? "yes" : "NO");
  return Correct ? 0 : 1;
}
