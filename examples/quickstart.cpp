//===- examples/quickstart.cpp - A Spice loop in 40 lines -----------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: speculatively parallelize a linked-list minimum search with
// the native runtime. Create one SpiceRuntime (the process-wide worker
// pool), then assemble the loop from lambdas with spice::LoopBuilder --
// the live-in transition (step), how chunk states merge (combine), and
// the initial state (init). No Traits struct needed.
//
// Build & run:  ./build/example_quickstart
//
//===----------------------------------------------------------------------===//

#include "core/LoopBuilder.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>

using namespace spice;

namespace {

struct Node {
  long Value;
  Node *Next;
};

} // namespace

int main() {
  // Build a 100k-node list.
  std::deque<Node> Arena;
  Node *Head = nullptr;
  for (long I = 0; I != 100000; ++I) {
    Arena.push_back({(I * 2654435761u) % 1000003, Head});
    Head = &Arena.back();
  }

  // One runtime per process: it owns the shared worker pool; every loop
  // in the program registers on it.
  core::SpiceRuntime Runtime(/*NumThreads=*/4);

  // The loop "while (n) { min = std::min(min, n->Value); n = n->Next; }"
  // assembled from lambdas. The live-in (Node *) is what Spice
  // speculates; the state (long) is the private per-chunk reduction.
  auto MinSearch =
      LoopBuilder<Node *, long>()
          .init([] { return std::numeric_limits<long>::max(); })
          .step([](Node *&N, long &Min, core::SpecSpace &) {
            if (!N)
              return false; // Natural loop exit.
            Min = std::min(Min, N->Value);
            N = N->Next;
            return true;
          })
          .combine([](long &Into, long &&Chunk) {
            Into = std::min(Into, Chunk);
          })
          .build(Runtime);

  // Invoke repeatedly: the first invocation bootstraps the value
  // predictor; later ones run as 4 speculative chunks.
  for (int Invocation = 0; Invocation != 5; ++Invocation)
    std::printf("invocation %d: min = %ld\n", Invocation,
                MinSearch.invoke(Head));

  const core::SpiceStats &S = MinSearch.stats();
  std::printf("\ninvocations: %lu (sequential: %lu, fully speculative: "
              "%lu)\n",
              (unsigned long)S.Invocations,
              (unsigned long)S.SequentialInvocations,
              (unsigned long)S.FullySpeculativeInvocations);
  std::printf("speculative chunks launched: %lu, squashed: %lu\n",
              (unsigned long)S.LaunchedSpecThreads,
              (unsigned long)S.SquashedThreads);
  return 0;
}
