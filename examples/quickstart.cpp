//===- examples/quickstart.cpp - SpiceLoop in 60 lines --------------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: speculatively parallelize a linked-list minimum search with
// the native runtime. Adapt a loop by describing its live-in transition
// (step), its private state (reductions), and how chunk states merge.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/SpiceLoop.h"

#include <algorithm>
#include <cstdio>
#include <deque>

using namespace spice::core;

namespace {

struct Node {
  long Value;
  Node *Next;
};

/// The loop "while (n) { min = std::min(min, n->Value); n = n->Next; }"
/// described for SpiceLoop.
struct MinSearch {
  using LiveIn = Node *;       // The speculated loop-carried value.
  struct State {               // Private per-chunk state (a reduction).
    long Min;
  };

  State initialState() { return {__LONG_MAX__}; }

  bool step(LiveIn &N, State &S, SpecSpace &) {
    if (!N)
      return false; // Natural loop exit.
    S.Min = std::min(S.Min, N->Value);
    N = N->Next;
    return true;
  }

  void combine(State &Into, State &&Chunk) {
    Into.Min = std::min(Into.Min, Chunk.Min);
  }
};

} // namespace

int main() {
  // Build a 100k-node list.
  std::deque<Node> Arena;
  Node *Head = nullptr;
  for (long I = 0; I != 100000; ++I) {
    Arena.push_back({(I * 2654435761u) % 1000003, Head});
    Head = &Arena.back();
  }

  MinSearch Traits;
  SpiceConfig Config;
  Config.NumThreads = 4;
  SpiceLoop<MinSearch> Loop(Traits, Config);

  // Invoke repeatedly: the first invocation bootstraps the value
  // predictor; later ones run as 4 speculative chunks.
  for (int Invocation = 0; Invocation != 5; ++Invocation) {
    MinSearch::State Result = Loop.invoke(Head);
    std::printf("invocation %d: min = %ld\n", Invocation, Result.Min);
  }

  const SpiceStats &S = Loop.stats();
  std::printf("\ninvocations: %lu (sequential: %lu, fully speculative: "
              "%lu)\n",
              (unsigned long)S.Invocations,
              (unsigned long)S.SequentialInvocations,
              (unsigned long)S.FullySpeculativeInvocations);
  std::printf("speculative threads launched: %lu, squashed: %lu\n",
              (unsigned long)S.LaunchedSpecThreads,
              (unsigned long)S.SquashedThreads);
  return 0;
}
