//===- examples/network_flow.cpp - mcf-style speculative stores -----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A loop that *writes* shared memory: the network-simplex potential
// refresh (181.mcf). Speculative chunks buffer their stores in a
// SpecWriteBuffer; at commit, the runtime value-validates every
// speculative read (most potential rewrites are silent, so validation
// almost always passes) and falls back to sequential re-execution when a
// pivot actually changed the values a chunk consumed.
//
// This example is also the async showcase: a server refreshing TWO
// independent basis networks drives both loops from ONE client thread
// through the submission API. submit(A); submit(B) admits both
// invocations to the runtime's scheduler -- B's speculative chunks start
// the moment A's resolution releases its lanes, overlapping A's commit
// tail and B's own chunk-0 drive, where the old invoke(); invoke()
// spelling serialized the two loops end to end. The per-loop
// QueuedMicros/GrantedLanes counters and the runtime's scheduler stats
// show the admission traffic.
//
//===----------------------------------------------------------------------===//

#include "core/SpiceFuture.h"
#include "core/SpiceLoop.h"
#include "core/SpiceRuntime.h"
#include "workloads/Mcf.h"

#include <cstdio>

using namespace spice::core;
using namespace spice::workloads;

namespace {

bool potentialsMatch(BasisTree &Live, BasisTree &Ref) {
  TreeNode *A = Live.traversalStart(), *B = Ref.traversalStart();
  while (A && B) {
    if (A->Potential != B->Potential)
      return false;
    A = BasisTree::advance(A);
    B = BasisTree::advance(B);
  }
  return !A && !B;
}

} // namespace

int main() {
  // Two independent basis trees (think: two tenants of one solver
  // service), each shadowed by a sequential twin that provides the
  // per-refresh oracle.
  BasisTree LiveA(20000, /*Seed=*/7), RefA(20000, 7);
  BasisTree LiveB(14000, /*Seed=*/11), RefB(14000, 11);

  // One runtime, one pool. FairShare: when both refreshes are queued,
  // neither monopolizes the lanes.
  RuntimeConfig RC;
  RC.NumThreads = 4;
  RC.Policy = LanePolicy::FairShare;
  SpiceRuntime Runtime(RC);

  McfTraits TraitsA, TraitsB;
  LoopOptions Opts;
  Opts.EnableConflictDetection = true; // Required: the loop stores.
  auto RefreshA = Runtime.makeLoop(TraitsA, Opts);
  auto RefreshB = Runtime.makeLoop(TraitsB, Opts);

  std::printf("simplex iterations with periodic potential refresh\n"
              "(two basis trees: %zu and %zu nodes, one shared runtime, "
              "one client thread)\n\n",
              LiveA.size(), LiveB.size());
  long ChecksumTotal = 0;
  for (int Pivot = 0; Pivot != 60; ++Pivot) {
    // Sequential twins first: the oracle for this pivot round.
    long WantA = RefA.refreshPotentialReference();
    long WantB = RefB.refreshPotentialReference();

    // Admit both refreshes, then resolve in submission order. A is
    // granted the free lanes immediately; B queues and its speculative
    // chunks start as soon as A's resolution hands the lanes back.
    SpiceFuture<McfTraits::State> FA = RefreshA.submit(LiveA.traversalStart());
    SpiceFuture<McfTraits::State> FB = RefreshB.submit(LiveB.traversalStart());
    McfTraits::State RA = FA.get();
    McfTraits::State RB = FB.get();
    if (RA.Checksum != WantA || RB.Checksum != WantB) {
      std::printf("CHECKSUM MISMATCH vs sequential twin at pivot %d\n",
                  Pivot);
      return 1;
    }
    ChecksumTotal += RA.Checksum + RB.Checksum;

    // A few basis exchanges + cost perturbations between refreshes, in
    // lockstep with the twins. Once in a while skip the incremental
    // update: the next refresh then catches stale potentials through
    // read validation.
    bool Propagate = Pivot % 7 != 6;
    LiveA.mutate(/*Arcs=*/2, /*Relocations=*/1, Propagate);
    RefA.mutate(2, 1, Propagate);
    LiveB.mutate(2, 1, Propagate);
    RefB.mutate(2, 1, Propagate);
  }

  if (!potentialsMatch(LiveA, RefA) || !potentialsMatch(LiveB, RefB)) {
    std::printf("\nPOTENTIAL MISMATCH vs sequential twin!\n");
    return 1;
  }

  const SpiceStats &SA = RefreshA.stats();
  const SpiceStats &SB = RefreshB.stats();
  SchedulerStats Sched = Runtime.schedulerStats();
  std::printf("refreshes:             %lu + %lu (all checksums and "
              "potentials match)\n",
              (unsigned long)SA.Invocations, (unsigned long)SB.Invocations);
  std::printf("checksum total:        %ld\n", ChecksumTotal);
  std::printf("conflict squashes:     %lu + %lu (stale-read validation "
              "failures)\n",
              (unsigned long)SA.ConflictSquashes,
              (unsigned long)SB.ConflictSquashes);
  std::printf("mis-speculation rate:  %.2f%% / %.2f%%\n",
              100.0 * SA.misspeculationRate(),
              100.0 * SB.misspeculationRate());
  std::printf("granted lanes:         %lu / %lu (mean partition per "
              "parallel invocation)\n",
              (unsigned long)SA.GrantedLanes,
              (unsigned long)SB.GrantedLanes);
  std::printf("queued micros:         %lu / %lu (B queues while A holds "
              "the pool)\n",
              (unsigned long)SA.QueuedMicros,
              (unsigned long)SB.QueuedMicros);
  std::printf("scheduler:             %lu submitted, %lu immediate + %lu "
              "deferred grants,\n                       %lu capped, "
              "high-water queue depth %lu\n",
              (unsigned long)Sched.Submitted,
              (unsigned long)Sched.ImmediateGrants,
              (unsigned long)Sched.DeferredGrants,
              (unsigned long)Sched.CappedGrants,
              (unsigned long)Sched.HighWaterQueueDepth);
  return 0;
}
