//===- examples/network_flow.cpp - mcf-style speculative stores -----------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A loop that *writes* shared memory: the network-simplex potential
// refresh (181.mcf). Speculative chunks buffer their stores in a
// SpecWriteBuffer; at commit, the runtime value-validates every
// speculative read (most potential rewrites are silent, so validation
// almost always passes) and falls back to sequential re-execution when a
// pivot actually changed the values a chunk consumed.
//
//===----------------------------------------------------------------------===//

#include "core/SpiceLoop.h"
#include "core/SpiceRuntime.h"
#include "workloads/Mcf.h"

#include <cstdio>

using namespace spice::core;
using namespace spice::workloads;

int main() {
  BasisTree Basis(20000, /*Seed=*/7);
  SpiceRuntime Runtime(/*NumThreads=*/4);
  McfTraits Traits;
  LoopOptions Opts;
  Opts.EnableConflictDetection = true; // Required: the loop stores.
  auto Refresh = Runtime.makeLoop(Traits, Opts);

  std::printf("simplex iterations with periodic potential refresh "
              "(%zu-node basis tree)\n\n",
              Basis.size());
  long ChecksumTotal = 0;
  for (int Pivot = 0; Pivot != 60; ++Pivot) {
    McfTraits::State R = Refresh.invoke(Basis.traversalStart());
    ChecksumTotal += R.Checksum;
    // A few basis exchanges + cost perturbations between refreshes. Once
    // in a while skip the incremental update: the next refresh then
    // catches stale potentials through read validation.
    bool Propagate = Pivot % 7 != 6;
    Basis.mutate(/*Arcs=*/2, /*Relocations=*/1, Propagate);
  }

  const SpiceStats &S = Refresh.stats();
  std::printf("refreshes:             %lu\n", (unsigned long)S.Invocations);
  std::printf("checksum total:        %ld\n", ChecksumTotal);
  std::printf("conflict squashes:     %lu (stale-read validation "
              "failures)\n",
              (unsigned long)S.ConflictSquashes);
  std::printf("recovery iterations:   %lu\n",
              (unsigned long)S.RecoveryIterations);
  std::printf("mis-speculation rate:  %.2f%%\n",
              100.0 * S.misspeculationRate());

  // Verify final memory state against a sequential twin. The check loop
  // registers on the *same* runtime: a second loop costs no threads.
  BasisTree Twin(20000, 7);
  auto Check = Runtime.makeLoop(Traits, Opts);
  for (int Pivot = 0; Pivot != 60; ++Pivot) {
    Twin.refreshPotentialReference();
    Twin.mutate(2, 1, Pivot % 7 != 6);
  }
  Twin.refreshPotentialReference();
  McfTraits::State Final = Refresh.invoke(Basis.traversalStart());
  TreeNode *A = Basis.traversalStart(), *B = Twin.traversalStart();
  while (A && B) {
    if (A->Potential != B->Potential) {
      std::printf("\nPOTENTIAL MISMATCH vs sequential twin!\n");
      return 1;
    }
    A = BasisTree::advance(A);
    B = BasisTree::advance(B);
  }
  std::printf("final checksum:        %ld (all potentials match the "
              "sequential twin)\n",
              Final.Checksum);
  return 0;
}
