//===- examples/value_profiler.cpp - Section 6 profiler walkthrough -------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Runs the value-profiler pipeline on three variants of the same list
// loop: stable, lightly churning, and fully rebuilt between invocations.
// The profiler instruments the IR, the interpreter feeds live-in
// signatures to the analyzer, and each loop lands in a predictability
// bin -- the evidence Figure 8 aggregates across 38 applications.
//
//===----------------------------------------------------------------------===//

#include "profiler/Instrumenter.h"
#include "profiler/ValueProfiler.h"
#include "vm/Interpreter.h"
#include "workloads/IRWorkloads.h"

#include <cstdio>
#include <vector>

using namespace spice;
using namespace spice::profiler;
using namespace spice::workloads;

namespace {

void profileVariant(const char *Label, unsigned Inserts, bool Rebuild) {
  ir::Module M;
  OtterIR W(150, 5);
  W.InsertsPerInvocation = Inserts;
  ir::Function *F = W.build(M);

  std::vector<InstrumentedLoop> Loops =
      instrumentFunction(M, *F, InstrumenterOptions());
  vm::Memory Mem(1 << 20);
  Mem.layoutGlobals(M);
  W.initData(Mem);

  ValueProfiler VP;
  for (int I = 0; I != 30; ++I) {
    vm::runFunction(*F, Mem, W.invocationArgs(Mem), &VP);
    if (Rebuild)
      W.initData(Mem); // Fresh list: nothing survives.
    else
      W.mutate(Mem);
  }
  VP.finish();

  const LoopSummary &S = VP.summary(Loops[0].LoopId);
  std::printf("%-24s | %3lu invocations | %5.1f%% predictable | bin: %s\n",
              Label, (unsigned long)S.Invocations,
              100.0 * S.predictableFraction(), getBinName(S.bin()));
}

} // namespace

int main() {
  std::printf("=== Value profiler (paper section 6) ===\n\n");
  std::printf("Loop live-ins are recorded per iteration; an invocation is "
              "predictable when more\nthan half its live-in signatures "
              "appeared in the previous invocation.\n\n");
  profileVariant("stable list", 0, false);
  profileVariant("remove-min + 2 inserts", 2, false);
  profileVariant("heavy churn (+60/invoc)", 60, false);
  profileVariant("rebuilt every invocation", 0, true);
  std::printf("\nLoops in the good/high bins are Spice candidates; the "
              "rebuilt list shows why\nsome loops never profit.\n");
  return 0;
}
