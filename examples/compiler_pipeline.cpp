//===- examples/compiler_pipeline.cpp - The full compiler path ------------===//
//
// Part of the Spice reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The research-compiler view: build the paper's Figure 1 loop in IR, run
// the analyses (loops, loop-carried live-ins, reductions), apply the
// automatic Spice transformation (Algorithm 1), print the generated
// worker, and execute both versions on the multicore timing simulator.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopCarried.h"
#include "ir/IRPrinter.h"
#include "workloads/SimHarness.h"

#include <cstdio>
#include <memory>

using namespace spice;
using namespace spice::analysis;
using namespace spice::workloads;

int main() {
  // 1. Build find_lightest_cl in IR.
  ir::Module M("otter");
  OtterIR Workload(800, 11);
  ir::Function *F = Workload.build(M);
  std::printf("=== Original IR ===\n%s\n", ir::printFunction(*F).c_str());

  // 2. Analyze: the compiler's view of the loop.
  CFGInfo CFG(*F);
  DominatorTree DT(CFG);
  LoopInfo LI(CFG, DT);
  const Loop *L = LI.topLevelLoops().front();
  LoopCarriedInfo Info = analyzeLoopCarried(CFG, *L);
  std::printf("=== Loop-carried analysis ===\n");
  std::printf("inter-iteration live-ins: %zu\n", Info.HeaderPhis.size());
  for (const ReductionInfo &R : Info.Reductions)
    std::printf("  reduction: %%%s (%s)\n", R.Phi->getName().c_str(),
                getReductionKindName(R.Kind));
  for (ir::Instruction *S : Info.SpeculatedLiveIns)
    std::printf("  speculated live-in: %%%s\n", S->getName().c_str());

  // 3. Transform (Algorithm 1).
  transform::SpiceTransformOptions Opts;
  Opts.NumThreads = 4;
  Opts.TripCountEstimate = 800;
  transform::SpiceParallelProgram P =
      transform::applySpiceTransform(M, *F, Opts);
  std::printf("\n=== Generated worker 1 (of %zu) ===\n%s\n",
              P.Workers.size(),
              ir::printFunction(*P.Workers[0]).c_str());

  // 4. Execute both versions on the simulator across 10 invocations.
  sim::MachineConfig Config;
  HarnessResult R = runTwinExperiment(
      [] { return std::make_unique<OtterIR>(800, 11); }, 4, 10, Config,
      800);
  std::printf("=== Simulated execution (Table 1 machine) ===\n");
  std::printf("invocations: %u, all correct: %s\n", R.Invocations,
              R.AllCorrect ? "yes" : "NO");
  std::printf("sequential cycles: %llu\n",
              (unsigned long long)R.SeqCycles);
  std::printf("4-thread cycles:   %llu\n",
              (unsigned long long)R.ParCycles);
  std::printf("loop speedup:      %.2fx\n", R.speedup());
  return R.AllCorrect ? 0 : 1;
}
